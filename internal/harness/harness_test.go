package harness

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/nas"
	"repro/internal/smp"
)

func TestRunFig11ClassS(t *testing.T) {
	var buf bytes.Buffer
	rows := RunFig11(&buf, []nas.Class{nas.ClassS}, 1)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	for _, impl := range ImplNames {
		if row.Seconds[impl] <= 0 {
			t.Errorf("%s: non-positive time %v", impl, row.Seconds[impl])
		}
		if !row.Verified[impl] {
			t.Errorf("%s: class S did not verify (norm %v)", impl, row.Norm[impl])
		}
	}
	out := buf.String()
	for _, frag := range []string{"Figure 11", "F77", "SAC", "C/OpenMP", "verified: true true true"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestTimedBestOfRepeats(t *testing.T) {
	calls := 0
	d, norm := timed(3, func() {}, func() float64 {
		calls++
		return float64(calls)
	})
	if calls != 3 {
		t.Fatalf("body ran %d times", calls)
	}
	if norm != 3 {
		t.Fatalf("norm = %v, want the last result", norm)
	}
	if d <= 0 {
		t.Fatalf("duration %v", d)
	}
	// repeats < 1 is clamped.
	calls = 0
	timed(0, func() {}, func() float64 { calls++; return 0 })
	if calls != 1 {
		t.Fatalf("clamped repeats ran %d times", calls)
	}
}

func TestCollectProfilesClassS(t *testing.T) {
	profiles := CollectProfiles(nas.ClassS)
	for _, impl := range ImplNames {
		p, ok := profiles[impl]
		if !ok {
			t.Fatalf("missing profile for %s", impl)
		}
		if p.SerialSeconds() <= 0 {
			t.Errorf("%s: empty profile", impl)
		}
		if len(p.Regions) < nas.ClassS.LT() {
			t.Errorf("%s: only %d regions", impl, len(p.Regions))
		}
	}
	// SAC probes the paper's operation names; f77 the Fortran kernels.
	names := map[string]bool{}
	for _, r := range profiles["SAC"].Regions {
		names[r.Name] = true
	}
	for _, want := range []string{"resid", "smooth", "fine2coarse", "coarse2fine"} {
		if !names[want] {
			t.Errorf("SAC profile missing region %q", want)
		}
	}
}

func TestFig12And13ClassS(t *testing.T) {
	var buf bytes.Buffer
	m := smp.Enterprise4000()
	series := RunFig12(&buf, []nas.Class{nas.ClassS}, m)
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	for _, s := range series {
		if len(s.Speedups) != m.MaxProcs {
			t.Fatalf("%s: %d speedup points", s.Impl, len(s.Speedups))
		}
		if s.Speedups[0] != 1 {
			t.Fatalf("%s: S(1) = %v", s.Impl, s.Speedups[0])
		}
	}
	rebased := RunFig13(&buf, series, m)
	if len(rebased) != 3 {
		t.Fatalf("rebased series = %d", len(rebased))
	}
	// F77's rebased curve equals its own curve (it is the baseline).
	for i, s := range series {
		if s.Impl != "F77" {
			continue
		}
		for p := range s.Speedups {
			if diff := rebased[i].Speedups[p] - s.Speedups[p]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("F77 rebased curve differs from own curve at P=%d", p+1)
			}
		}
	}
	// Every curve is scaled by exactly f77Serial/ownSerial (on tiny class
	// S the ordering itself is timing noise, so assert the arithmetic).
	var f77Serial float64
	for _, s := range series {
		if s.Impl == "F77" {
			f77Serial = s.Serial
		}
	}
	for i, s := range series {
		factor := f77Serial / s.Serial
		for p := range s.Speedups {
			want := s.Speedups[p] * factor
			if diff := rebased[i].Speedups[p] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: rebased[%d] = %v, want %v", s.Impl, p+1, rebased[i].Speedups[p], want)
			}
		}
	}
	out := buf.String()
	for _, frag := range []string{"Figure 12", "Figure 13", "serial"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestRunCodeSize(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Join(filepath.Dir(file), "..", "..")
	var buf bytes.Buffer
	rows, err := RunCodeSize(&buf, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lines < 50 {
			t.Errorf("%s: implausible line count %d", r.Impl, r.Lines)
		}
	}
	// The paper's direction: the SAC algorithm is the smallest artifact.
	if rows[0].Lines >= rows[2].Lines {
		t.Errorf("SAC program (%d lines) not smaller than the F77 port (%d lines)",
			rows[0].Lines, rows[2].Lines)
	}
}

func TestRunCodeSizeBadDir(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunCodeSize(&buf, "/nonexistent-root"); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestTraitsForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown impl did not panic")
		}
	}()
	traitsFor("pascal")
}

func TestRenderSpeedupChart(t *testing.T) {
	var buf bytes.Buffer
	series := []SpeedupSeries{
		{Impl: "F77", Speedups: []float64{1, 1.5, 2, 2.4}},
		{Impl: "SAC", Speedups: []float64{1, 1.8, 2.5, 3.2}},
		{Impl: "C/OpenMP", Speedups: []float64{1, 1.9, 2.8, 3.7}},
	}
	RenderSpeedupChart(&buf, "test chart", series)
	out := buf.String()
	for _, frag := range []string{"test chart", "F", "S", "O", "processors"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
	// Empty input draws nothing.
	var empty bytes.Buffer
	RenderSpeedupChart(&empty, "none", nil)
	if empty.Len() != 0 {
		t.Error("empty series produced output")
	}
}

func TestMops(t *testing.T) {
	// Class S: 58 * 32^3 * 4 flops; at 1 second that is ~7.6 Mop/s.
	got := Mops(nas.ClassS, 1.0)
	want := 58.0 * 32 * 32 * 32 * 4 / 1e6
	if got != want {
		t.Fatalf("Mops = %v, want %v", got, want)
	}
}

func TestRunMPIStats(t *testing.T) {
	var buf bytes.Buffer
	rows := RunMPIStats(&buf, nas.ClassS, []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%d ranks did not verify (rnm2 %v)", r.Ranks, r.Rnm2)
		}
	}
	if rows[0].Messages != 0 {
		t.Errorf("1 rank sent %d messages", rows[0].Messages)
	}
	if rows[1].Messages == 0 {
		t.Error("4 ranks sent no messages")
	}
	if !strings.Contains(buf.String(), "domain decomposition") {
		t.Error("missing table header")
	}
}
