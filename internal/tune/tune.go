// Package tune is a per-loop-nest schedule autotuner for the WITH-loop
// engine. The paper relies on two global runtime policies — one scheduling
// strategy and one sequential threshold for every WITH-loop — but the best
// parameters differ per kernel and per grid level: the finest relaxation
// wants parallel blocked traversal, the 4³ coarse grids want to stay
// sequential, and cache tiling only pays above a level-dependent size.
// ComPar (PAPERS.md) demonstrates that choosing parallelization parameters
// per loop nest beats any single global setting; SAC's own runtime makes
// the sequential-threshold decision adaptively. This package generalises
// both: each (kernel, level) pair gets its own execution Plan.
//
// A Plan fixes the scheduling policy, chunk size, sequential threshold,
// cache tile size and inner-loop kernel variant (scalar, line-buffered or
// SIMD) of one kernel at one grid level. The Tuner calibrates plans
// online: the first executions of a key cycle through a candidate set
// (each candidate measured Trials times, best-of kept, NPB style), and
// once every candidate has been measured the fastest plan is cached and
// used for all subsequent executions. Calibration never changes results —
// every candidate plan produces bit-identical output (the determinism
// contract of internal/sched, the order-preserving norm accumulation of
// the fused kernels, and the shared canonical association of all kernel
// variants), so the tuner is free to experiment mid-run.
//
// Calibrated plans serialize to JSON (Save/Load), so a profile measured
// once can be shipped with a deployment and applied from the first
// iteration (cmd/mgbench -tuneplan).
package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/simd"
)

// SeqAlways is a sequential-threshold value that forces sequential
// execution of any realistic index space — the "stay sequential" candidate
// for coarse grids.
const SeqAlways = 1 << 40

// Kernel-variant names for Plan.Kernel. An empty Kernel field means
// scalar, so profiles saved before the field existed load unchanged.
const (
	VariantScalar   = "scalar"
	VariantBuffered = "buffered"
	VariantSIMD     = "simd"
)

// ValidVariant reports whether s names a kernel variant ("" = scalar).
func ValidVariant(s string) bool {
	switch s {
	case "", VariantScalar, VariantBuffered, VariantSIMD:
		return true
	}
	return false
}

// ForcedVariant returns the process-wide kernel-variant override from the
// MG_FORCE_VARIANT environment variable ("" when unset). Read once: the
// override is a CI/debug lever, not a runtime toggle.
var ForcedVariant = sync.OnceValue(func() string { return os.Getenv("MG_FORCE_VARIANT") })

// Plan is the tuned execution schedule of one kernel at one grid level.
type Plan struct {
	// Policy is the sched partitioning strategy.
	Policy sched.Policy `json:"policy"`
	// Chunk is the chunk size for the chunked policies (0 = default).
	Chunk int `json:"chunk,omitempty"`
	// SeqThreshold executes index spaces of at most this many elements
	// sequentially (SeqAlways = always sequential).
	SeqThreshold int `json:"seqThreshold,omitempty"`
	// Tile is the j/k cache-tile edge of the tiled rank-3 kernels
	// (0 = untiled full-plane traversal).
	Tile int `json:"tile,omitempty"`
	// Kernel selects the inner-loop backend of the rank-3 plane kernels:
	// VariantScalar, VariantBuffered or VariantSIMD. Empty means scalar
	// (the pre-variant profile format). The buffered and simd backends
	// ignore Tile (their line buffers already serialise full rows).
	Kernel string `json:"kernel,omitempty"`
}

// Variant returns the plan's kernel backend, mapping the empty field of
// old profiles to VariantScalar.
func (p Plan) Variant() string {
	if p.Kernel == "" {
		return VariantScalar
	}
	return p.Kernel
}

// ForOptions converts the plan into scheduler loop options.
func (p Plan) ForOptions() sched.ForOptions {
	return sched.ForOptions{Policy: p.Policy, Chunk: p.Chunk, SeqThreshold: p.SeqThreshold}
}

// String renders e.g. "dynamic tile=16" or "static-block seq".
func (p Plan) String() string {
	s := p.Policy.String()
	if p.SeqThreshold >= SeqAlways {
		s += " seq"
	} else if p.SeqThreshold > 0 {
		s += fmt.Sprintf(" seq<=%d", p.SeqThreshold)
	}
	if p.Chunk > 0 {
		s += fmt.Sprintf(" chunk=%d", p.Chunk)
	}
	if p.Tile > 0 {
		s += fmt.Sprintf(" tile=%d", p.Tile)
	}
	if v := p.Variant(); v != VariantScalar {
		s += " " + v
	}
	return s
}

// Key identifies one tuned loop nest: a kernel name and the MG grid level
// it runs on (log2 of the interior extent).
type Key struct {
	Kernel string
	Level  int
}

// String renders the JSON map key, e.g. "subRelax@5".
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Kernel, k.Level) }

// parseKey inverts Key.String.
func parseKey(s string) (Key, error) {
	at := strings.LastIndex(s, "@")
	if at < 0 {
		return Key{}, fmt.Errorf("tune: key %q has no @level suffix", s)
	}
	level, err := strconv.Atoi(s[at+1:])
	if err != nil {
		return Key{}, fmt.Errorf("tune: key %q: %v", s, err)
	}
	return Key{Kernel: s[:at], Level: level}, nil
}

// entry is the calibration state of one key.
type entry struct {
	cands  []Plan
	best   []time.Duration // minimum measured time per candidate
	trials []int           // measurements taken per candidate
	calls  int             // round-robin cursor
	chosen *Plan
}

// Tuner calibrates and caches Plans per (kernel, level). The zero value is
// not ready; use New. A Tuner is safe for concurrent use and may be shared
// across environments.
type Tuner struct {
	// Trials is how many measurements each candidate gets before the
	// fastest is chosen (0 means 2). More trials resist timing noise.
	Trials int
	// Now is the clock (nil means time.Now); tests inject a fake.
	Now func() time.Time
	// Observer, when non-nil, is called once per key when its plan
	// settles — at the end of calibration or on SetPlan/Load. The call is
	// made outside the tuner's lock, so an observer may call back into
	// the tuner. Set it before tuned execution starts.
	Observer func(Key, Plan)

	mu      sync.Mutex
	workers int
	entries map[Key]*entry
}

// New creates a tuner that calibrates for a pool of the given worker
// count. workers <= 1 restricts candidates to sequential plans (tile
// sweep only).
func New(workers int) *Tuner {
	return &Tuner{workers: workers, entries: map[Key]*entry{}}
}

// Workers returns the worker count the candidate set was built for.
func (t *Tuner) Workers() int { return t.workers }

func (t *Tuner) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

func (t *Tuner) trials() int {
	if t.Trials > 0 {
		return t.Trials
	}
	return 2
}

// candidates builds the plan candidates of one key. The interior extent at
// MG level L is 2^L, which bounds the useful tile sizes.
func (t *Tuner) candidates(key Key) []Plan {
	n := 1 << key.Level
	tiles := []int{0}
	for _, tile := range []int{8, 16, 32} {
		if tile < n {
			tiles = append(tiles, tile)
		}
	}
	var scheds []Plan
	if t.workers > 1 {
		scheds = []Plan{
			{Policy: sched.StaticBlock, SeqThreshold: SeqAlways}, // stay sequential
			{Policy: sched.StaticBlock},
			{Policy: sched.StaticCyclic},
			{Policy: sched.Dynamic},
			{Policy: sched.Guided},
		}
	} else {
		scheds = []Plan{{Policy: sched.StaticBlock, SeqThreshold: SeqAlways}}
	}
	// The variant candidates ride each scheduling policy untiled: the
	// buffered/simd backends ignore the tile edge, so tiled duplicates
	// would only dilute the calibration budget. Rows shorter than 8
	// cannot amortise the line-buffer fills, so coarse levels keep the
	// scalar-only candidate set. The simd candidate is offered only
	// where the AVX2 path is live — elsewhere it would measure
	// identically to buffered arithmetic done the slower way.
	var variants []string
	if n >= 8 {
		variants = append(variants, VariantBuffered)
		if simd.Available() {
			variants = append(variants, VariantSIMD)
		}
	}
	plans := make([]Plan, 0, len(scheds)*(len(tiles)+len(variants)))
	for _, s := range scheds {
		for _, tile := range tiles {
			s.Tile = tile
			plans = append(plans, s)
		}
		s.Tile = 0
		for _, v := range variants {
			s.Kernel = v
			plans = append(plans, s)
		}
	}
	return plans
}

// Begin returns the plan to use for one execution of kernel at level, and
// a commit function the caller invokes when the execution has finished.
// While the key is calibrating, Begin cycles through the candidates and
// commit records the elapsed wall time; once calibrated, Begin returns the
// chosen plan and commit is a no-op.
func (t *Tuner) Begin(kernel string, level int) (Plan, func()) {
	key := Key{Kernel: kernel, Level: level}
	t.mu.Lock()
	e := t.entries[key]
	if e == nil {
		cands := t.candidates(key)
		e = &entry{
			cands:  cands,
			best:   make([]time.Duration, len(cands)),
			trials: make([]int, len(cands)),
		}
		t.entries[key] = e
	}
	if e.chosen != nil {
		plan := *e.chosen
		t.mu.Unlock()
		return plan, func() {}
	}
	idx := e.calls % len(e.cands)
	e.calls++
	plan := e.cands[idx]
	t.mu.Unlock()
	start := t.now()
	return plan, func() {
		elapsed := t.now().Sub(start)
		t.mu.Lock()
		if e.chosen != nil {
			t.mu.Unlock()
			return
		}
		if e.trials[idx] == 0 || elapsed < e.best[idx] {
			e.best[idx] = elapsed
		}
		e.trials[idx]++
		for _, n := range e.trials {
			if n < t.trials() {
				t.mu.Unlock()
				return
			}
		}
		chosen := e.cands[e.argmin()]
		e.chosen = &chosen
		observer := t.Observer
		t.mu.Unlock()
		if observer != nil {
			observer(key, chosen)
		}
	}
}

// argmin returns the index of the fastest measured candidate. Caller holds
// the lock; every candidate has at least one measurement.
func (e *entry) argmin() int {
	best := 0
	for i := 1; i < len(e.cands); i++ {
		if e.best[i] < e.best[best] {
			best = i
		}
	}
	return best
}

// snapshot returns the best-known plan of an entry: the chosen plan, or
// the current argmin while calibrating (ok=false with no measurements).
func (e *entry) snapshot() (Plan, bool) {
	if e.chosen != nil {
		return *e.chosen, true
	}
	measured := false
	for _, n := range e.trials {
		if n > 0 {
			measured = true
			break
		}
	}
	if !measured {
		return Plan{}, false
	}
	// Restrict argmin to measured candidates.
	best, bestT := -1, time.Duration(0)
	for i := range e.cands {
		if e.trials[i] > 0 && (best < 0 || e.best[i] < bestT) {
			best, bestT = i, e.best[i]
		}
	}
	return e.cands[best], true
}

// Settled reports whether every key seen so far has finished calibration.
// It is false until the first Begin.
func (t *Tuner) Settled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) == 0 {
		return false
	}
	for _, e := range t.entries {
		if e.chosen == nil {
			return false
		}
	}
	return true
}

// Plans returns the best-known plan per key: calibrated plans plus the
// current front-runner of any key still calibrating.
func (t *Tuner) Plans() map[Key]Plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[Key]Plan{}
	for key, e := range t.entries {
		if plan, ok := e.snapshot(); ok {
			out[key] = plan
		}
	}
	return out
}

// SetPlan installs a plan for a key, ending its calibration. The
// Observer, if set, is notified.
func (t *Tuner) SetPlan(key Key, plan Plan) {
	t.mu.Lock()
	p := plan
	t.entries[key] = &entry{chosen: &p}
	observer := t.Observer
	t.mu.Unlock()
	if observer != nil {
		observer(key, plan)
	}
}

// profile is the JSON document of Save/Load.
type profile struct {
	Workers int             `json:"workers"`
	Plans   map[string]Plan `json:"plans"`
}

// Save writes the best-known plans as JSON.
func (t *Tuner) Save(w io.Writer) error {
	plans := t.Plans()
	doc := profile{Workers: t.workers, Plans: make(map[string]Plan, len(plans))}
	for key, plan := range plans {
		doc.Plans[key.String()] = plan
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load installs plans from a JSON document written by Save. Loaded keys
// skip calibration; unknown keys still calibrate on first use.
func (t *Tuner) Load(r io.Reader) error {
	var doc profile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("tune: load: %w", err)
	}
	for name, plan := range doc.Plans {
		key, err := parseKey(name)
		if err != nil {
			return err
		}
		if !ValidVariant(plan.Kernel) {
			return fmt.Errorf("tune: key %q: unknown kernel variant %q", name, plan.Kernel)
		}
		t.SetPlan(key, plan)
	}
	return nil
}

// SaveFile writes the profile to a file.
func (t *Tuner) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tune: save: %w", err)
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a profile from a file.
func (t *Tuner) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tune: load: %w", err)
	}
	defer f.Close()
	return t.Load(f)
}

// SortedKeys returns the tuner's keys ordered by kernel then level, for
// stable report output.
func SortedKeys(plans map[Key]Plan) []Key {
	keys := make([]Key, 0, len(plans))
	for k := range plans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kernel != keys[j].Kernel {
			return keys[i].Kernel < keys[j].Kernel
		}
		return keys[i].Level < keys[j].Level
	})
	return keys
}
