package tune

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/sched"
)

// FuzzProfileLoad feeds arbitrary bytes to Load: it must either succeed or
// return an error — never panic — and a successful load must survive a
// Save/Load round trip.
func FuzzProfileLoad(f *testing.F) {
	// Seed 1: a real Save output.
	t := New(4)
	t.SetPlan(Key{Kernel: "subRelax", Level: 5}, Plan{Policy: sched.Dynamic, Chunk: 2, Tile: 16})
	t.SetPlan(Key{Kernel: "interpolate", Level: 3}, Plan{Policy: sched.StaticBlock, SeqThreshold: SeqAlways})
	var valid bytes.Buffer
	if err := t.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Seed 2: truncated document.
	f.Add(valid.Bytes()[:valid.Len()/2])
	// Seed 3: key without a level suffix.
	f.Add([]byte(`{"workers":4,"plans":{"subRelax":{"policy":"dynamic"}}}`))
	// Seed 4: unknown policy name.
	f.Add([]byte(`{"workers":4,"plans":{"subRelax@5":{"policy":"fancy"}}}`))
	// Seed 5: junk.
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"workers":"four"}`))
	f.Add([]byte(`{"plans":{"a@-3":{"tile":-1}}}`))
	// Seed 6: kernel-variant plans — valid, unknown, and a pre-variant
	// profile (no "kernel" field at all; must load as scalar).
	f.Add([]byte(`{"workers":4,"plans":{"subRelax@5":{"policy":"dynamic","kernel":"buffered"}}}`))
	f.Add([]byte(`{"workers":4,"plans":{"subRelax@5":{"policy":"dynamic","kernel":"turbo"}}}`))
	f.Add([]byte(`{"workers":4,"plans":{"subRelax@5":{"policy":"dynamic","tile":16}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tu := New(4)
		if err := tu.Load(bytes.NewReader(data)); err != nil {
			return // rejected cleanly; that's the contract
		}
		// Accepted input must round-trip: Save it, Load into a fresh
		// tuner, and compare the plan maps.
		var out bytes.Buffer
		if err := tu.Save(&out); err != nil {
			t.Fatalf("Save after successful Load failed: %v", err)
		}
		tu2 := New(4)
		if err := tu2.Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip rejected its own Save output: %v\n%s", err, out.Bytes())
		}
		if !reflect.DeepEqual(tu.Plans(), tu2.Plans()) {
			t.Fatalf("round trip changed plans:\nfirst:  %v\nsecond: %v", tu.Plans(), tu2.Plans())
		}
	})
}

// FuzzPlanRoundTrip drives SetPlan/Save/Load with fuzzer-chosen plan
// fields and checks the profile survives unchanged.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add("subRelax", 5, uint8(2), 4, 0, 16, uint8(0))
	f.Add("a@b", 0, uint8(0), 0, 1<<40, 0, uint8(2))
	f.Add("", 12, uint8(3), -1, -1, -1, uint8(3))
	f.Fuzz(func(t *testing.T, kernel string, level int, policy uint8, chunk, seq, tile int, variant uint8) {
		if !utf8.ValidString(kernel) {
			// encoding/json replaces invalid UTF-8 with U+FFFD, which
			// would legitimately change the key; that is JSON's contract,
			// not a round-trip bug.
			return
		}
		plan := Plan{
			Policy:       sched.Policy(policy % 4),
			Chunk:        chunk,
			SeqThreshold: seq,
			Tile:         tile,
			Kernel:       []string{"", VariantScalar, VariantBuffered, VariantSIMD}[variant%4],
		}
		key := Key{Kernel: kernel, Level: level}
		tu := New(2)
		tu.SetPlan(key, plan)
		var buf bytes.Buffer
		if err := tu.Save(&buf); err != nil {
			t.Fatalf("Save(%+v) failed: %v", plan, err)
		}
		tu2 := New(2)
		if err := tu2.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Load of own Save output failed: %v\n%s", err, buf.Bytes())
		}
		got, ok := tu2.Plans()[key]
		if !ok {
			t.Fatalf("key %v lost in round trip; plans: %v", key, tu2.Plans())
		}
		if got != plan {
			t.Fatalf("plan changed in round trip: sent %+v, got %+v", plan, got)
		}
	})
}

// TestLoadCorruptInputs pins the error (not panic) behavior on a fixed
// table of malformed documents, independent of the fuzz corpus.
func TestLoadCorruptInputs(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"empty", ""},
		{"truncated", `{"workers":4,"plans":{"subRelax@5":{"poli`},
		{"not json", "schedule: dynamic"},
		{"key missing level", `{"plans":{"subRelax":{"policy":"dynamic"}}}`},
		{"key bad level", `{"plans":{"subRelax@five":{"policy":"dynamic"}}}`},
		{"bad policy", `{"plans":{"subRelax@5":{"policy":"fancy"}}}`},
		{"wrong types", `{"plans":{"subRelax@5":{"tile":"big"}}}`},
		{"bad variant", `{"plans":{"subRelax@5":{"policy":"dynamic","kernel":"turbo"}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tu := New(4)
			if err := tu.Load(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("Load accepted %q", tc.doc)
			}
			if len(tu.Plans()) != 0 {
				t.Fatalf("failed Load left plans behind: %v", tu.Plans())
			}
		})
	}
}

// TestObserverFiresOnSettle checks the Observer sees calibration settle
// and explicit SetPlan, and that it runs outside the lock (re-entrancy).
func TestObserverFiresOnSettle(t *testing.T) {
	tu := New(1)
	tu.Trials = 1
	var seen []Key
	tu.Observer = func(k Key, p Plan) {
		seen = append(seen, k)
		tu.Plans() // must not deadlock: observer runs outside the lock
	}
	// Single worker → candidate set is sequential plans (tile sweep).
	// Drive Begin/commit until the key settles.
	for i := 0; i < 16 && len(seen) == 0; i++ {
		_, commit := tu.Begin("subRelax", 2)
		commit()
	}
	if len(seen) != 1 || seen[0] != (Key{Kernel: "subRelax", Level: 2}) {
		t.Fatalf("observer saw %v, want one settle of subRelax@2", seen)
	}
	tu.SetPlan(Key{Kernel: "interpolate", Level: 3}, Plan{})
	if len(seen) != 2 {
		t.Fatalf("observer did not see SetPlan: %v", seen)
	}
}
