package tune

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// fakeClock advances a deterministic amount per reading, with a
// per-candidate cost table driving which plan wins.
type fakeClock struct {
	now  time.Time
	cost func(calls int) time.Duration
	n    int
}

func (c *fakeClock) read() time.Time {
	c.n++
	if c.n%2 == 0 && c.cost != nil {
		// Every second reading closes a Begin/commit pair; advance by the
		// cost of that call.
		c.now = c.now.Add(c.cost(c.n / 2))
	}
	return c.now
}

// Calibration must try every candidate Trials times and then settle on the
// cheapest one.
func TestCalibrationChoosesFastest(t *testing.T) {
	tu := New(4)
	tu.Trials = 2
	cands := tu.candidates(Key{Kernel: "k", Level: 5})
	if len(cands) < 8 {
		t.Fatalf("expected a rich candidate set for a parallel level-5 kernel, got %d", len(cands))
	}
	fastest := 3 // arbitrary candidate index made cheapest by the fake clock
	call := 0
	clock := &fakeClock{now: time.Unix(0, 0), cost: func(int) time.Duration {
		idx := call % len(cands)
		call++
		if idx == fastest {
			return time.Millisecond
		}
		return 10 * time.Millisecond
	}}
	tu.Now = clock.read
	for i := 0; i < len(cands)*tu.Trials; i++ {
		if tu.Settled() && i < len(cands)*tu.Trials {
			// Settling early would mean some candidate was skipped.
			t.Fatalf("tuner settled after %d of %d calibration calls", i, len(cands)*tu.Trials)
		}
		plan, commit := tu.Begin("k", 5)
		if plan != cands[i%len(cands)] {
			t.Fatalf("call %d used plan %v, want candidate %v", i, plan, cands[i%len(cands)])
		}
		commit()
	}
	if !tu.Settled() {
		t.Fatal("tuner did not settle after full calibration")
	}
	plan, _ := tu.Begin("k", 5)
	if plan != cands[fastest] {
		t.Fatalf("chose %v, want fastest candidate %v", plan, cands[fastest])
	}
}

// Sequential tuners only sweep tiles; coarse levels have no tile
// candidates larger than the grid.
func TestCandidateSets(t *testing.T) {
	seq := New(1)
	for _, c := range seq.candidates(Key{Kernel: "k", Level: 6}) {
		if c.SeqThreshold != SeqAlways {
			t.Fatalf("sequential tuner produced a parallel candidate %v", c)
		}
	}
	par := New(8)
	coarse := par.candidates(Key{Kernel: "k", Level: 1})
	for _, c := range coarse {
		if c.Tile != 0 {
			t.Fatalf("level-1 grid (2 interior points) got tile candidate %v", c)
		}
	}
	if len(coarse) != 5 {
		t.Fatalf("level-1 candidates = %d, want 5 (one per schedule)", len(coarse))
	}
}

// Plans loaded from JSON skip calibration entirely.
func TestLoadSkipsCalibration(t *testing.T) {
	tu := New(4)
	want := Plan{Policy: sched.Dynamic, Chunk: 2, Tile: 16}
	tu.SetPlan(Key{Kernel: "subRelax", Level: 5}, want)
	plan, _ := tu.Begin("subRelax", 5)
	if plan != want {
		t.Fatalf("Begin returned %v, want the installed plan %v", plan, want)
	}
	if !tu.Settled() {
		t.Fatal("tuner with only installed plans is not settled")
	}
}

// Save/Load round-trips the plan set bit-for-bit, including policy names.
func TestJSONRoundTrip(t *testing.T) {
	tu := New(4)
	tu.SetPlan(Key{Kernel: "subRelax", Level: 5}, Plan{Policy: sched.Dynamic, Tile: 16})
	tu.SetPlan(Key{Kernel: "subRelax", Level: 1}, Plan{Policy: sched.StaticBlock, SeqThreshold: SeqAlways})
	tu.SetPlan(Key{Kernel: "interpolate", Level: 4}, Plan{Policy: sched.Guided, Chunk: 3, Tile: 8})
	var buf bytes.Buffer
	if err := tu.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back := New(4)
	if err := back.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Plans(), tu.Plans(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed plans:\n got %v\nwant %v", got, want)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"dynamic"`)) {
		t.Fatalf("policies not serialized by name:\n%s", buf.String())
	}
}

// Profiles written before the kernel-variant field existed (no "kernel"
// key in any plan) must keep loading, and their plans must dispatch as
// scalar — the only backend those profiles could have measured.
func TestLoadOldProfileDefaultsScalar(t *testing.T) {
	old := `{"workers":4,"plans":{
		"subRelax@5":{"policy":"dynamic","chunk":2,"tile":16},
		"interpolate@3":{"policy":"static-block","seq_threshold":-1}}}`
	tu := New(4)
	if err := tu.Load(strings.NewReader(old)); err != nil {
		t.Fatalf("pre-variant profile rejected: %v", err)
	}
	for key, plan := range tu.Plans() {
		if plan.Kernel != "" {
			t.Fatalf("%v: old profile loaded with Kernel %q, want empty", key, plan.Kernel)
		}
		if v := plan.Variant(); v != VariantScalar {
			t.Fatalf("%v: Variant() = %q, want %q", key, v, VariantScalar)
		}
	}
	// And the scalar default stays invisible on the wire: a plan with no
	// explicit variant must serialize without a "kernel" key, so profiles
	// written by this version remain readable by the previous one.
	var buf bytes.Buffer
	if err := tu.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"kernel"`)) {
		t.Fatalf("default-variant plans serialized a kernel field:\n%s", buf.String())
	}
}

// Save mid-calibration snapshots the current front-runner.
func TestSaveMidCalibration(t *testing.T) {
	tu := New(1)
	tu.Trials = 100 // never settles in this test
	clock := &fakeClock{now: time.Unix(0, 0), cost: func(int) time.Duration { return time.Millisecond }}
	tu.Now = clock.read
	_, commit := tu.Begin("k", 5)
	commit()
	plans := tu.Plans()
	if len(plans) != 1 {
		t.Fatalf("mid-calibration snapshot has %d plans, want 1", len(plans))
	}
}

// A key string survives the parse round trip, including kernel names
// containing '@'.
func TestKeyParse(t *testing.T) {
	for _, key := range []Key{{"subRelax", 5}, {"odd@name", 2}} {
		back, err := parseKey(key.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != key {
			t.Fatalf("parseKey(%q) = %v, want %v", key.String(), back, key)
		}
	}
	if _, err := parseKey("nolevel"); err == nil {
		t.Fatal("parseKey accepted a key without a level")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Policy: sched.Dynamic, Chunk: 4, Tile: 16}
	if s := p.String(); s != "dynamic chunk=4 tile=16" {
		t.Fatalf("String = %q", s)
	}
	q := Plan{Policy: sched.StaticBlock, SeqThreshold: SeqAlways}
	if s := q.String(); s != "static-block seq" {
		t.Fatalf("String = %q", s)
	}
}
