// Package array implements dense n-dimensional float64 arrays as first-class
// values — the Go counterpart of SAC's double[+] type.
//
// Arrays of any rank share one representation: a flat row-major []float64
// plus a shape vector. Rank-0 arrays are scalars with a single element.
// The package deliberately contains no compound array operations: exactly
// like SAC, those live in the array library (internal/aplib) and are
// expressed through WITH-loops (internal/withloop). Here there are only the
// built-in primitives the SAC core language provides — dim, shape, element
// selection — plus the constructors and equality helpers everything else is
// built from.
package array

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/shape"
)

// Array is a dense n-dimensional array of float64 in row-major order.
// The zero value is an invalid array; use the constructors.
type Array struct {
	shp  shape.Shape
	data []float64
}

// New allocates a zero-initialized array of the given shape.
func New(shp shape.Shape) *Array {
	if !shp.Valid() {
		panic(fmt.Sprintf("array: invalid shape %v", shp))
	}
	return &Array{shp: shp.Clone(), data: make([]float64, shp.Size())}
}

// NewFilled allocates an array of the given shape with every element set to
// val.
func NewFilled(shp shape.Shape, val float64) *Array {
	a := New(shp)
	a.Fill(val)
	return a
}

// Wrap builds an array around an existing flat buffer without copying.
// len(data) must equal shp.Size(). The caller must not use data afterwards
// except through the returned array.
func Wrap(shp shape.Shape, data []float64) *Array {
	if !shp.Valid() {
		panic(fmt.Sprintf("array: invalid shape %v", shp))
	}
	if len(data) != shp.Size() {
		panic(fmt.Sprintf("array: Wrap: buffer length %d does not match shape %v (size %d)",
			len(data), shp, shp.Size()))
	}
	return &Array{shp: shp.Clone(), data: data}
}

// FromSlice builds an array of the given shape from a row-major element
// slice, copying the data.
func FromSlice(shp shape.Shape, elems []float64) *Array {
	if len(elems) != shp.Size() {
		panic(fmt.Sprintf("array: FromSlice: %d elements for shape %v (size %d)",
			len(elems), shp, shp.Size()))
	}
	a := New(shp)
	copy(a.data, elems)
	return a
}

// Scalar builds a rank-0 array holding val.
func Scalar(val float64) *Array {
	return &Array{shp: shape.Shape{}, data: []float64{val}}
}

// Dim returns the rank of the array — SAC's dim(array).
func (a *Array) Dim() int { return a.shp.Rank() }

// Shape returns the array's shape — SAC's shape(array). The returned slice
// is the array's own; callers must not modify it.
func (a *Array) Shape() shape.Shape { return a.shp }

// Size returns the total number of elements.
func (a *Array) Size() int { return len(a.data) }

// Data returns the underlying flat row-major buffer. Hot kernels index it
// directly; the buffer is the array's own storage, not a copy.
func (a *Array) Data() []float64 { return a.data }

// At returns the element at the given index vector — SAC's array[iv].
// It panics on out-of-bounds access.
func (a *Array) At(idx shape.Index) float64 { return a.data[a.shp.Offset(idx)] }

// Set stores val at the given index vector. It panics on out-of-bounds
// access.
func (a *Array) Set(idx shape.Index, val float64) { a.data[a.shp.Offset(idx)] = val }

// At3 returns the element at (i, j, k) of a rank-3 array without building an
// index vector. It panics if the array is not rank 3.
func (a *Array) At3(i, j, k int) float64 {
	if a.shp.Rank() != 3 {
		panic(fmt.Sprintf("array: At3 on rank-%d array", a.shp.Rank()))
	}
	return a.data[(i*a.shp[1]+j)*a.shp[2]+k]
}

// Set3 stores val at (i, j, k) of a rank-3 array.
func (a *Array) Set3(i, j, k int, val float64) {
	if a.shp.Rank() != 3 {
		panic(fmt.Sprintf("array: Set3 on rank-%d array", a.shp.Rank()))
	}
	a.data[(i*a.shp[1]+j)*a.shp[2]+k] = val
}

// Fill sets every element to val.
func (a *Array) Fill(val float64) {
	d := a.data
	for i := range d {
		d[i] = val
	}
}

// Zero sets every element to 0.
func (a *Array) Zero() {
	clear(a.data)
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	c := New(a.shp)
	copy(c.data, a.data)
	return c
}

// CopyFrom copies the contents of src into a. The shapes must be equal.
func (a *Array) CopyFrom(src *Array) {
	if !a.shp.Equal(src.shp) {
		panic(fmt.Sprintf("array: CopyFrom: shape mismatch %v vs %v", a.shp, src.shp))
	}
	copy(a.data, src.data)
}

// Equal reports exact (bitwise on the float64 values) equality of shape and
// contents. NaNs compare unequal, like ==.
func (a *Array) Equal(b *Array) bool {
	if !a.shp.Equal(b.shp) {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b have the same shape and every pair of
// elements differs by at most tol in absolute value.
func (a *Array) ApproxEqual(b *Array, tol float64) bool {
	if !a.shp.Equal(b.shp) {
		return false
	}
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); !(d <= tol) { // NaN-propagating
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b. The shapes must be equal.
func (a *Array) MaxAbsDiff(b *Array) float64 {
	if !a.shp.Equal(b.shp) {
		panic(fmt.Sprintf("array: MaxAbsDiff: shape mismatch %v vs %v", a.shp, b.shp))
	}
	m := 0.0
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); d > m {
			m = d
		}
	}
	return m
}

// String renders small arrays fully and large arrays as a summary, so that
// failed test output stays readable.
func (a *Array) String() string {
	const limit = 64
	var b strings.Builder
	fmt.Fprintf(&b, "array%v", a.shp)
	if len(a.data) <= limit {
		b.WriteByte('{')
		for i, v := range a.data {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('}')
	} else {
		fmt.Fprintf(&b, "{%g %g ... %g; %d elements}",
			a.data[0], a.data[1], a.data[len(a.data)-1], len(a.data))
	}
	return b.String()
}
