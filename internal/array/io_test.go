package array

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/shape"
)

func TestWriteReadRoundTrip(t *testing.T) {
	a := New(shape.Of(3, 4, 5))
	for i := range a.Data() {
		a.Data()[i] = math.Sin(float64(i))
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(4 + 4 + 3*8 + 60*8)
	if n != wantBytes {
		t.Fatalf("wrote %d bytes, want %d", n, wantBytes)
	}
	b, err := ReadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a) {
		t.Fatal("round trip changed the array")
	}
}

func TestRoundTripScalarAndEmpty(t *testing.T) {
	for _, a := range []*Array{Scalar(3.14), New(shape.Of(0)), New(shape.Of(2, 0, 3))} {
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := ReadArray(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Shape().Equal(a.Shape()) {
			t.Fatalf("shape %v round-tripped to %v", a.Shape(), b.Shape())
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8},
		"truncated": func() []byte {
			var buf bytes.Buffer
			a := New(shape.Of(4, 4))
			a.WriteTo(&buf)
			return buf.Bytes()[:20]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadArray(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadRejectsImplausibleHeader(t *testing.T) {
	// A header claiming rank 1000.
	var buf bytes.Buffer
	a := Scalar(1)
	a.WriteTo(&buf)
	data := buf.Bytes()
	data[4] = 0xFF
	data[5] = 0xFF
	if _, err := ReadArray(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("implausible rank accepted: %v", err)
	}
}

// Property: serialization preserves every bit pattern, including negative
// zero, infinities and NaN payload-free NaNs.
func TestRoundTripBitPatternsQuick(t *testing.T) {
	f := func(vals [6]float64) bool {
		a := FromSlice(shape.Of(2, 3), vals[:])
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := ReadArray(&buf)
		if err != nil {
			return false
		}
		for i := range vals {
			x, y := a.Data()[i], b.Data()[i]
			if math.Float64bits(x) != math.Float64bits(y) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Explicit specials.
	specials := FromSlice(shape.Of(4), []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.NaN()})
	var buf bytes.Buffer
	specials.WriteTo(&buf)
	back, err := ReadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specials.Data() {
		if math.Float64bits(specials.Data()[i]) != math.Float64bits(back.Data()[i]) {
			t.Fatalf("special value %d changed bits", i)
		}
	}
}
