package array

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/shape"
)

func TestNewZeroInitialized(t *testing.T) {
	a := New(shape.Of(2, 3))
	if a.Dim() != 2 || a.Size() != 6 {
		t.Fatalf("Dim/Size = %d/%d", a.Dim(), a.Size())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New not zero-initialized")
		}
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with negative extent did not panic")
		}
	}()
	New(shape.Of(2, -1))
}

func TestNewFilled(t *testing.T) {
	a := NewFilled(shape.Of(4), 2.5)
	for _, v := range a.Data() {
		if v != 2.5 {
			t.Fatal("NewFilled wrong value")
		}
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.14)
	if s.Dim() != 0 || s.Size() != 1 {
		t.Fatalf("scalar Dim/Size = %d/%d", s.Dim(), s.Size())
	}
	if s.At(shape.Index{}) != 3.14 {
		t.Fatal("scalar At failed")
	}
}

func TestWrapNoCopy(t *testing.T) {
	buf := []float64{1, 2, 3, 4}
	a := Wrap(shape.Of(2, 2), buf)
	buf[3] = 9
	if a.At(shape.Index{1, 1}) != 9 {
		t.Fatal("Wrap copied the buffer")
	}
}

func TestWrapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wrap with wrong buffer length did not panic")
		}
	}()
	Wrap(shape.Of(2, 2), make([]float64, 3))
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(shape.Of(2, 3), src)
	src[0] = 99
	if a.At(shape.Index{0, 0}) != 1 {
		t.Fatal("FromSlice aliases its input")
	}
	if a.At(shape.Index{1, 2}) != 6 {
		t.Fatal("FromSlice row-major order wrong")
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(shape.Of(2, 2), []float64{1})
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(shape.Of(3, 4, 5))
	idx := shape.Index{2, 1, 3}
	a.Set(idx, 42)
	if a.At(idx) != 42 {
		t.Fatal("At/Set round trip failed")
	}
	// Row-major position check against the flat buffer.
	if a.Data()[2*20+1*5+3] != 42 {
		t.Fatal("Set wrote to the wrong flat position")
	}
}

func TestAt3Set3MatchGeneric(t *testing.T) {
	a := New(shape.Of(3, 4, 5))
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				a.Set3(i, j, k, float64(i*100+j*10+k))
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				want := float64(i*100 + j*10 + k)
				if a.At3(i, j, k) != want || a.At(shape.Index{i, j, k}) != want {
					t.Fatalf("At3/At mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestAt3WrongRankPanics(t *testing.T) {
	a := New(shape.Of(2, 2))
	defer func() {
		if recover() == nil {
			t.Error("At3 on rank-2 array did not panic")
		}
	}()
	a.At3(0, 0, 0)
}

func TestFillZero(t *testing.T) {
	a := New(shape.Of(10))
	a.Fill(7)
	for _, v := range a.Data() {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFilled(shape.Of(2, 2), 1)
	b := a.Clone()
	b.Set(shape.Index{0, 0}, 5)
	if a.At(shape.Index{0, 0}) != 1 {
		t.Fatal("Clone aliases original")
	}
	if !a.Shape().Equal(b.Shape()) {
		t.Fatal("Clone changed shape")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(shape.Of(2, 2))
	b := NewFilled(shape.Of(2, 2), 3)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom with shape mismatch did not panic")
		}
	}()
	a.CopyFrom(New(shape.Of(3)))
}

func TestEqual(t *testing.T) {
	a := FromSlice(shape.Of(2, 2), []float64{1, 2, 3, 4})
	b := FromSlice(shape.Of(2, 2), []float64{1, 2, 3, 4})
	if !a.Equal(b) {
		t.Fatal("equal arrays reported unequal")
	}
	b.Set(shape.Index{1, 1}, 5)
	if a.Equal(b) {
		t.Fatal("unequal arrays reported equal")
	}
	if a.Equal(FromSlice(shape.Of(4), []float64{1, 2, 3, 4})) {
		t.Fatal("shape ignored by Equal")
	}
}

func TestEqualNaN(t *testing.T) {
	a := FromSlice(shape.Of(1), []float64{math.NaN()})
	if a.Equal(a.Clone()) {
		t.Fatal("NaN should compare unequal, like ==")
	}
}

func TestApproxEqual(t *testing.T) {
	a := FromSlice(shape.Of(2), []float64{1, 2})
	b := FromSlice(shape.Of(2), []float64{1.0000001, 2})
	if !a.ApproxEqual(b, 1e-6) {
		t.Fatal("ApproxEqual too strict")
	}
	if a.ApproxEqual(b, 1e-9) {
		t.Fatal("ApproxEqual too lax")
	}
	if a.ApproxEqual(FromSlice(shape.Of(1), []float64{1}), 1) {
		t.Fatal("ApproxEqual ignored shape")
	}
	nan := FromSlice(shape.Of(2), []float64{math.NaN(), 2})
	if a.ApproxEqual(nan, 1) || nan.ApproxEqual(a, 1) {
		t.Fatal("ApproxEqual must reject NaN")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(shape.Of(3), []float64{1, 2, 3})
	b := FromSlice(shape.Of(3), []float64{1, 2.5, 2})
	if got := a.MaxAbsDiff(b); got != 1 {
		t.Fatalf("MaxAbsDiff = %g, want 1", got)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice(shape.Of(2), []float64{1, 2})
	if s := small.String(); !strings.Contains(s, "[2]") || !strings.Contains(s, "1 2") {
		t.Errorf("small String = %q", s)
	}
	large := New(shape.Of(100))
	if s := large.String(); !strings.Contains(s, "100 elements") {
		t.Errorf("large String = %q", s)
	}
}

// Property: Clone always compares Equal (absent NaN) and never aliases.
func TestCloneQuick(t *testing.T) {
	f := func(vals [8]float64, mutate uint8) bool {
		for _, v := range vals {
			if math.IsNaN(v) {
				return true // skip: NaN != NaN by design
			}
		}
		a := FromSlice(shape.Of(2, 4), vals[:])
		b := a.Clone()
		if !a.Equal(b) {
			return false
		}
		i := int(mutate) % 8
		b.Data()[i] = b.Data()[i] + 1
		return !a.Equal(b) || vals[i]+1 == vals[i] // allow +1 == identity at huge magnitudes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAt3(b *testing.B) {
	a := New(shape.Of(64, 64, 64))
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += a.At3(32, 16, 8)
	}
	_ = s
}
