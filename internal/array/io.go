// Binary serialization of arrays. The format is a fixed little-endian
// layout (magic, rank, extents, raw float64 data), so grids written by
// cmd/mg -dump can be compared across runs or loaded into other tools.
package array

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/shape"
)

// ioMagic identifies the serialization format ("SACA" + version 1).
const ioMagic uint32 = 0x53414301

// maxIORank bounds the rank accepted when reading, guarding against
// corrupted headers.
const maxIORank = 16

// WriteTo serializes the array to w: magic, rank, extents and the
// row-major element data, all little-endian. It returns the number of
// bytes written.
func (a *Array) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(ioMagic); err != nil {
		return n, fmt.Errorf("array: write header: %w", err)
	}
	if err := write(uint32(a.Dim())); err != nil {
		return n, fmt.Errorf("array: write rank: %w", err)
	}
	for _, e := range a.Shape() {
		if err := write(uint64(e)); err != nil {
			return n, fmt.Errorf("array: write extent: %w", err)
		}
	}
	if err := write(a.Data()); err != nil {
		return n, fmt.Errorf("array: write data: %w", err)
	}
	return n, nil
}

// ReadArray deserializes an array written by WriteTo.
func ReadArray(r io.Reader) (*Array, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("array: read header: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("array: bad magic %#x (not a serialized array)", magic)
	}
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("array: read rank: %w", err)
	}
	if rank > maxIORank {
		return nil, fmt.Errorf("array: implausible rank %d", rank)
	}
	shp := make(shape.Shape, rank)
	for i := range shp {
		var e uint64
		if err := binary.Read(r, binary.LittleEndian, &e); err != nil {
			return nil, fmt.Errorf("array: read extent: %w", err)
		}
		const maxExtent = 1 << 32
		if e > maxExtent {
			return nil, fmt.Errorf("array: implausible extent %d", e)
		}
		shp[i] = int(e)
	}
	a := New(shp)
	if err := binary.Read(r, binary.LittleEndian, a.Data()); err != nil {
		return nil, fmt.Errorf("array: read data: %w", err)
	}
	return a, nil
}
