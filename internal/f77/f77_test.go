package f77

import (
	"math"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/sched"
	"repro/internal/shape"
	"repro/internal/stencil"
	wl "repro/internal/withloop"
)

// TestVerifyClassS is the repository's primary oracle: the port must
// reproduce the official NPB verification norm for class S.
func TestVerifyClassS(t *testing.T) {
	s := New(nas.ClassS)
	rnm2, _ := s.Run()
	want, official, ok := nas.ClassS.VerifyValue()
	if !ok || !official {
		t.Fatal("class S lost its official verification value")
	}
	if math.Abs(rnm2-want) > nas.Epsilon {
		t.Fatalf("class S rnm2 = %.13e, want %.13e ± %g", rnm2, want, nas.Epsilon)
	}
	// The agreement is much tighter than the NPB tolerance: 12+ digits.
	if rel := math.Abs(rnm2-want) / want; rel > 1e-11 {
		t.Fatalf("class S relative error %.3e, expected < 1e-11", rel)
	}
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatal("Verify() rejected the computed norm")
	}
}

// TestVerifyClassW checks the NPB 2.3-specific 64³/40-iteration class.
func TestVerifyClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W takes ~0.3s; skipped in -short")
	}
	s := New(nas.ClassW)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassW.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassW.VerifyValue()
		t.Fatalf("class W rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// TestVerifyClassA runs the paper's large size class (≈4s).
func TestVerifyClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("class A takes ~4s; skipped in -short")
	}
	s := New(nas.ClassA)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassA.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassA.VerifyValue()
		t.Fatalf("class A rnm2 = %.13e, want %.13e", rnm2, want)
	}
}

// Every parallel mode and worker count must produce bit-identical results.
func TestParallelModesBitIdentical(t *testing.T) {
	ref := New(nas.ClassS)
	refNorm, _ := ref.Run()
	for _, mode := range []Mode{AutoPar, FullPar} {
		for _, workers := range []int{2, 4} {
			pool := sched.NewPool(workers)
			s := NewParallel(nas.ClassS, pool, mode)
			rnm2, _ := s.Run()
			pool.Close()
			if rnm2 != refNorm {
				t.Fatalf("mode %v workers %d: rnm2 = %.17e, serial %.17e (not bitwise equal)",
					mode, workers, rnm2, refNorm)
			}
			if !s.U().Equal(ref.U()) {
				t.Fatalf("mode %v workers %d: solution grids differ", mode, workers)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || AutoPar.String() != "autopar" || FullPar.String() != "fullpar" {
		t.Fatal("Mode.String wrong")
	}
	if Mode(99).String() != "Mode(?)" {
		t.Fatal("unknown mode String wrong")
	}
}

// The residual must shrink monotonically (and roughly geometrically)
// across V-cycle iterations — the convergence the multigrid method exists
// to deliver.
func TestResidualConvergence(t *testing.T) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	prev, _ := s.Norms()
	for it := 0; it < 4; it++ {
		s.MG3P()
		s.EvalResid()
		cur, _ := s.Norms()
		if cur >= prev {
			t.Fatalf("iteration %d: rnm2 %e did not decrease from %e", it, cur, prev)
		}
		if cur > prev*0.5 {
			t.Fatalf("iteration %d: contraction factor %f too weak for multigrid", it, cur/prev)
		}
		prev = cur
	}
}

// resid computes v − A·u: with u = 0 the result is v itself (plus comm3).
func TestResidWithZeroU(t *testing.T) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	n := nas.ClassS.N
	for i3 := 1; i3 <= n; i3 += 7 {
		for i2 := 1; i2 <= n; i2 += 7 {
			for i1 := 1; i1 <= n; i1 += 7 {
				if s.R().At3(i3, i2, i1) != s.V().At3(i3, i2, i1) {
					t.Fatalf("r != v at (%d,%d,%d) with u=0", i3, i2, i1)
				}
			}
		}
	}
}

// The f77 resid kernel must agree with the generic WITH-loop stencil
// library: r = v − A·u where A is stencil.A, after identical border setup.
func TestResidMatchesStencilLibrary(t *testing.T) {
	n := 8
	m := n + 2
	// Random-ish u and v with periodic borders.
	u := array.New(shape.Of(m, m, m))
	v := array.New(shape.Of(m, m, m))
	for i := range u.Data() {
		u.Data()[i] = math.Sin(float64(i) * 0.7)
		v.Data()[i] = math.Cos(float64(i) * 0.3)
	}
	nas.Comm3(u)
	nas.Comm3(v)

	s := New(nas.Class{Name: 'S', N: n, Iter: 1})
	r := array.New(shape.Of(m, m, m))
	s.resid(u, v, r)

	e := wl.Default()
	au := stencil.Relax(e, u, stencil.A)
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				want := v.At3(i3, i2, i1) - au.At3(i3, i2, i1)
				if d := math.Abs(r.At3(i3, i2, i1) - want); d > 1e-13 {
					t.Fatalf("resid differs from library stencil at (%d,%d,%d): %g vs %g",
						i3, i2, i1, r.At3(i3, i2, i1), want)
				}
			}
		}
	}
}

// psinv adds S·r to u; check against the stencil library.
func TestPsinvMatchesStencilLibrary(t *testing.T) {
	n := 8
	m := n + 2
	r := array.New(shape.Of(m, m, m))
	for i := range r.Data() {
		r.Data()[i] = math.Sin(float64(i) * 1.3)
	}
	nas.Comm3(r)
	u := array.New(shape.Of(m, m, m))

	s := New(nas.Class{Name: 'S', N: n, Iter: 1})
	s.psinv(r, u)

	e := wl.Default()
	sr := stencil.Relax(e, r, stencil.SClassSWA)
	for i3 := 1; i3 <= n; i3++ {
		for i2 := 1; i2 <= n; i2++ {
			for i1 := 1; i1 <= n; i1++ {
				if d := math.Abs(u.At3(i3, i2, i1) - sr.At3(i3, i2, i1)); d > 1e-14 {
					t.Fatalf("psinv differs from library stencil at (%d,%d,%d)", i3, i2, i1)
				}
			}
		}
	}
}

// rprj3 is the P stencil evaluated at even fine points: cross-check one
// coarse element against the stencil library composed with condensation.
func TestRprj3MatchesStencilLibrary(t *testing.T) {
	n := 8
	m := n + 2
	rf := array.New(shape.Of(m, m, m))
	for i := range rf.Data() {
		rf.Data()[i] = math.Sin(float64(i) * 0.9)
	}
	nas.Comm3(rf)
	s := New(nas.Class{Name: 'S', N: n, Iter: 1})
	rc := array.New(shape.Of(n/2+2, n/2+2, n/2+2))
	s.rprj3(rf, rc)

	e := wl.Default()
	pr := stencil.Relax(e, rf, stencil.P)
	for j3 := 1; j3 <= n/2; j3++ {
		for j2 := 1; j2 <= n/2; j2++ {
			for j1 := 1; j1 <= n/2; j1++ {
				want := pr.At3(2*j3, 2*j2, 2*j1)
				if d := math.Abs(rc.At3(j3, j2, j1) - want); d > 1e-13 {
					t.Fatalf("rprj3 differs from P stencil at coarse (%d,%d,%d): %g vs %g",
						j3, j2, j1, rc.At3(j3, j2, j1), want)
				}
			}
		}
	}
}

// interp is trilinear prolongation: even fine points receive the coarse
// value exactly, odd points averages — cross-check against the Q stencil
// on a scattered grid.
func TestInterpMatchesStencilLibrary(t *testing.T) {
	nc := 4
	mc := nc + 2
	nf := 2 * nc
	mf := nf + 2
	z := array.New(shape.Of(mc, mc, mc))
	for i := range z.Data() {
		z.Data()[i] = math.Cos(float64(i) * 0.45)
	}
	nas.Comm3(z)
	s := New(nas.Class{Name: 'S', N: nf, Iter: 1})
	u := array.New(shape.Of(mf, mf, mf))
	s.interp(z, u)

	// Build the same thing with scatter + Q relax (the SAC formulation).
	e := wl.Default()
	zs := array.New(shape.Of(2*mc, 2*mc, 2*mc))
	for c3 := 0; c3 < mc; c3++ {
		for c2 := 0; c2 < mc; c2++ {
			for c1 := 0; c1 < mc; c1++ {
				zs.Set3(2*c3, 2*c2, 2*c1, z.At3(c3, c2, c1))
			}
		}
	}
	zt := array.New(shape.Of(mf, mf, mf))
	for i3 := 0; i3 < mf; i3++ {
		for i2 := 0; i2 < mf; i2++ {
			for i1 := 0; i1 < mf; i1++ {
				zt.Set3(i3, i2, i1, zs.At3(i3, i2, i1))
			}
		}
	}
	q := stencil.Relax(e, zt, stencil.Q)
	for i3 := 1; i3 <= nf; i3++ {
		for i2 := 1; i2 <= nf; i2++ {
			for i1 := 1; i1 <= nf; i1++ {
				if d := math.Abs(u.At3(i3, i2, i1) - q.At3(i3, i2, i1)); d > 1e-13 {
					t.Fatalf("interp differs from Q∘scatter at (%d,%d,%d): %g vs %g",
						i3, i2, i1, u.At3(i3, i2, i1), q.At3(i3, i2, i1))
				}
			}
		}
	}
}

// Probing must observe every kernel of a V-cycle with plausible structure.
func TestProbeCoverage(t *testing.T) {
	s := New(nas.ClassS)
	counts := map[string]int{}
	s.Probe = func(region string, level int, _ time.Duration) {
		counts[region]++
		if level < 1 || level > s.Levels() {
			t.Errorf("probe level %d out of range", level)
		}
	}
	s.Reset()
	s.EvalResid()
	s.MG3P()
	lt := s.Levels()
	want := map[string]int{
		"rprj3":  lt - 1,
		"psinv":  lt,
		"interp": lt - 1,
		"resid":  1 + (lt - 1), // EvalResid + per-level resids of the up-cycle
	}
	for region, n := range want {
		if counts[region] != n {
			t.Errorf("probe %s count = %d, want %d (all: %v)", region, counts[region], n, counts)
		}
	}
}

// The benchmark is repeatable: two full runs give identical norms.
func TestRunDeterministic(t *testing.T) {
	s := New(nas.ClassS)
	a, _ := s.Run()
	b, _ := s.Run()
	if a != b {
		t.Fatalf("two runs differ: %v vs %v", a, b)
	}
}

func BenchmarkClassSIteration(b *testing.B) {
	s := New(nas.ClassS)
	s.Reset()
	s.EvalResid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MG3P()
		s.EvalResid()
	}
}
