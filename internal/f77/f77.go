// Package f77 is a faithful Go port of the serial Fortran-77 reference
// implementation of NAS-MG (NPB 2.3, mg.f) — the baseline the paper
// measures SAC against in Figs. 11–13.
//
// Everything that makes the Fortran code fast is preserved:
//
//   - a static grid hierarchy allocated once (u, r at every level, v at the
//     finest) — "a static memory layout in a low-level Fortran-77
//     implementation" (paper, §5);
//   - the hand-optimized stencil kernels resid and psinv that share
//     partial sums between neighbouring elements through the line buffers
//     u1/u2 (r1/r2), reducing the 27-point stencil to 4 multiplications
//     and 12–20 additions per element;
//   - the restriction (rprj3) and prolongation (interp) kernels with
//     their x1/y1 and z1/z2/z3 buffers;
//   - the benchmark driver: r = v − Au, then nit iterations of
//     mg3P (one V-cycle) followed by resid, then norm2u3 → verification.
//
// Loop structures and floating-point evaluation order follow mg.f
// statement by statement (with Fortran's contiguous first index mapped to
// Go's contiguous last index), so the port reproduces the official
// verification norms bit-for-bit within the NPB tolerance.
//
// The solver can also run its resid/psinv loop nests on a worker pool.
// Mode AutoPar parallelizes only those two kernels — modelling the SUN f77
// auto-parallelizer of the paper, which handles the clean, dependence-free
// outer DO loops of resid/psinv but not the strided index expressions and
// reused line buffers of rprj3/interp. Mode FullPar parallelizes all four
// kernels (what a directive-based approach achieves). Results are
// bit-identical in every mode and for every worker count.
package f77

import (
	"time"

	"repro/internal/array"
	"repro/internal/nas"
	"repro/internal/nasrand"
	"repro/internal/sched"
	"repro/internal/stencil"
)

// Mode selects which loop nests run on the worker pool.
type Mode int

const (
	// Serial executes everything inline.
	Serial Mode = iota
	// AutoPar parallelizes resid and psinv only — the conservative
	// auto-parallelizer of the paper's Fig. 12 Fortran curves.
	AutoPar
	// FullPar parallelizes resid, psinv, rprj3 and interp.
	FullPar
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case AutoPar:
		return "autopar"
	case FullPar:
		return "fullpar"
	default:
		return "Mode(?)"
	}
}

// Solver is one NPB-MG problem instance with its static grid hierarchy.
type Solver struct {
	// Class is the problem size class.
	Class nas.Class
	// Probe, when non-nil, is called with the duration of every kernel
	// invocation — the measurement hook of the SMP cost model
	// (internal/smp). Probing is only meaningful in Serial mode.
	Probe nas.Probe
	// Seed selects the zran3 charge stream; 0 means the official NPB
	// seed (the verification constants apply only to that one).
	Seed uint64

	lt   int
	u, r []*array.Array // levels 1..lt (index 0 unused)
	v    *array.Array   // finest level right-hand side
	a, c stencil.Coeffs

	pool *sched.Pool
	mode Mode
	// Line buffers for the serial path (worker 0); parallel workers
	// allocate their own.
	buf1, buf2, buf3 []float64
}

// New creates a serial solver for the given class.
func New(class nas.Class) *Solver { return NewParallel(class, nil, Serial) }

// NewParallel creates a solver that runs the selected loop nests on pool.
// A nil pool means serial regardless of mode.
func NewParallel(class nas.Class, pool *sched.Pool, mode Mode) *Solver {
	lt := class.LT()
	s := &Solver{
		Class: class,
		lt:    lt,
		u:     make([]*array.Array, lt+1),
		r:     make([]*array.Array, lt+1),
		a:     stencil.A,
		c:     class.SmootherCoeffs(),
		pool:  pool,
		mode:  mode,
	}
	for k := 1; k <= lt; k++ {
		s.u[k] = array.New(class.ExtShape(k))
		s.r[k] = array.New(class.ExtShape(k))
	}
	s.v = array.New(class.ExtShape(lt))
	m := class.ExtShape(lt)[0]
	s.buf1 = make([]float64, m)
	s.buf2 = make([]float64, m)
	s.buf3 = make([]float64, m)
	return s
}

// Levels returns the number of grid levels (log2 of the interior extent).
func (s *Solver) Levels() int { return s.lt }

// U returns the solution grid at the finest level (extended form).
func (s *Solver) U() *array.Array { return s.u[s.lt] }

// V returns the right-hand side at the finest level (extended form).
func (s *Solver) V() *array.Array { return s.v }

// R returns the residual grid at the finest level (extended form).
func (s *Solver) R() *array.Array { return s.r[s.lt] }

// Reset restores the benchmark's initial state: u = 0 everywhere and
// v = zran3 charges (deterministic).
func (s *Solver) Reset() {
	for k := 1; k <= s.lt; k++ {
		s.u[k].Zero()
		s.r[k].Zero()
	}
	seed := s.Seed
	if seed == 0 {
		seed = nasrand.DefaultSeed
	}
	nas.Zran3Seeded(s.v, s.Class.N, seed)
}

// probe measures one kernel invocation.
func (s *Solver) probe(region string, level int, f func()) {
	if s.Probe == nil {
		f()
		return
	}
	start := time.Now()
	f()
	s.Probe(region, level, time.Since(start))
}

// parallel reports whether a kernel region runs on the pool in the
// configured mode.
func (s *Solver) parallel(region string) bool {
	if s.pool == nil || s.pool.Workers() == 1 {
		return false
	}
	switch s.mode {
	case FullPar:
		return true
	case AutoPar:
		return region == "resid" || region == "psinv"
	default:
		return false
	}
}

// pFor runs body over [0, n) — on the pool when the region is
// parallelized, inline otherwise.
func (s *Solver) pFor(region string, n int, body func(lo, hi, worker int)) {
	if s.parallel(region) {
		s.pool.For(n, sched.ForOptions{}, body)
		return
	}
	body(0, n, 0)
}

// --- kernels (statement-level ports of mg.f) -----------------------------------

// resid computes r = v − A·u on the interior and refreshes r's periodic
// border (mg.f subroutine resid). v and r may alias, as in mg3P's
// intermediate levels.
func (s *Solver) resid(u, v, r *array.Array) {
	m := u.Shape()[0]
	ud, vd, rd := u.Data(), v.Data(), r.Data()
	a0, a2, a3 := s.a[0], s.a[2], s.a[3] // a(1) = 0: term omitted like the original
	s.pFor("resid", m-2, func(lo, hi, worker int) {
		u1, u2 := s.buf1, s.buf2
		if worker != 0 {
			u1 = make([]float64, m)
			u2 = make([]float64, m)
		}
		for i3 := lo + 1; i3 <= hi; i3++ {
			for i2 := 1; i2 < m-1; i2++ {
				zz := (i3*m + i2) * m
				zm := (i3*m + i2 - 1) * m
				zp := (i3*m + i2 + 1) * m
				mz := ((i3-1)*m + i2) * m
				pz := ((i3+1)*m + i2) * m
				mm := ((i3-1)*m + i2 - 1) * m
				mp := ((i3-1)*m + i2 + 1) * m
				pm := ((i3+1)*m + i2 - 1) * m
				pp := ((i3+1)*m + i2 + 1) * m
				for i1 := 0; i1 < m; i1++ {
					u1[i1] = ud[zm+i1] + ud[zp+i1] + ud[mz+i1] + ud[pz+i1]
					u2[i1] = ud[mm+i1] + ud[mp+i1] + ud[pm+i1] + ud[pp+i1]
				}
				for i1 := 1; i1 < m-1; i1++ {
					rd[zz+i1] = vd[zz+i1] -
						a0*ud[zz+i1] -
						a2*(u2[i1]+u1[i1-1]+u1[i1+1]) -
						a3*(u2[i1-1]+u2[i1+1])
				}
			}
		}
	})
	nas.Comm3(r)
}

// psinv computes u = u + S·r on the interior and refreshes u's periodic
// border (mg.f subroutine psinv). The c(3) term is omitted exactly like
// the original, which assumes c(3) = 0 (true for every class).
func (s *Solver) psinv(r, u *array.Array) {
	m := u.Shape()[0]
	rd, ud := r.Data(), u.Data()
	c0, c1, c2 := s.c[0], s.c[1], s.c[2]
	s.pFor("psinv", m-2, func(lo, hi, worker int) {
		r1, r2 := s.buf1, s.buf2
		if worker != 0 {
			r1 = make([]float64, m)
			r2 = make([]float64, m)
		}
		for i3 := lo + 1; i3 <= hi; i3++ {
			for i2 := 1; i2 < m-1; i2++ {
				zz := (i3*m + i2) * m
				zm := (i3*m + i2 - 1) * m
				zp := (i3*m + i2 + 1) * m
				mz := ((i3-1)*m + i2) * m
				pz := ((i3+1)*m + i2) * m
				mm := ((i3-1)*m + i2 - 1) * m
				mp := ((i3-1)*m + i2 + 1) * m
				pm := ((i3+1)*m + i2 - 1) * m
				pp := ((i3+1)*m + i2 + 1) * m
				for i1 := 0; i1 < m; i1++ {
					r1[i1] = rd[zm+i1] + rd[zp+i1] + rd[mz+i1] + rd[pz+i1]
					r2[i1] = rd[mm+i1] + rd[mp+i1] + rd[pm+i1] + rd[pp+i1]
				}
				for i1 := 1; i1 < m-1; i1++ {
					ud[zz+i1] = ud[zz+i1] +
						c0*rd[zz+i1] +
						c1*(rd[zz+i1-1]+rd[zz+i1+1]+r1[i1]) +
						c2*(r2[i1]+r1[i1-1]+r1[i1+1])
				}
			}
		}
	})
	nas.Comm3(u)
}

// rprj3 projects the fine residual rk onto the coarse grid rj with the
// P-operator weights 1/2, 1/4, 1/8, 1/16 (mg.f subroutine rprj3) and
// refreshes rj's periodic border.
func (s *Solver) rprj3(rk, rj *array.Array) {
	mk := rk.Shape()[0]
	mj := rj.Shape()[0]
	rd, sd := rk.Data(), rj.Data()
	s.pFor("rprj3", mj-2, func(lo, hi, worker int) {
		x1, y1 := s.buf1, s.buf2
		if worker != 0 {
			x1 = make([]float64, mk)
			y1 = make([]float64, mk)
		}
		for j3 := lo + 1; j3 <= hi; j3++ {
			i3 := 2 * j3
			for j2 := 1; j2 < mj-1; j2++ {
				i2 := 2 * j2
				zz := (i3*mk + i2) * mk
				zm := (i3*mk + i2 - 1) * mk
				zp := (i3*mk + i2 + 1) * mk
				mz := ((i3-1)*mk + i2) * mk
				pz := ((i3+1)*mk + i2) * mk
				mmr := ((i3-1)*mk + i2 - 1) * mk
				mpr := ((i3-1)*mk + i2 + 1) * mk
				pmr := ((i3+1)*mk + i2 - 1) * mk
				ppr := ((i3+1)*mk + i2 + 1) * mk
				// Buffers at the odd fine positions flanking each coarse
				// centre (Fortran's first inner loop).
				for f := 1; f < mk; f += 2 {
					x1[f] = rd[zm+f] + rd[zp+f] + rd[mz+f] + rd[pz+f]
					y1[f] = rd[mmr+f] + rd[pmr+f] + rd[mpr+f] + rd[ppr+f]
				}
				for j1 := 1; j1 < mj-1; j1++ {
					f := 2 * j1
					y2 := rd[mmr+f] + rd[pmr+f] + rd[mpr+f] + rd[ppr+f]
					x2 := rd[zm+f] + rd[zp+f] + rd[mz+f] + rd[pz+f]
					sd[(j3*mj+j2)*mj+j1] = 0.5*rd[zz+f] +
						0.25*(rd[zz+f-1]+rd[zz+f+1]+x2) +
						0.125*(x1[f-1]+x1[f+1]+y2) +
						0.0625*(y1[f-1]+y1[f+1])
				}
			}
		}
	})
	nas.Comm3(rj)
}

// interp adds the trilinear prolongation of the coarse correction z onto
// the fine grid u (mg.f subroutine interp; weights 1, 1/2, 1/4, 1/8).
// Like the original, it writes the whole extended fine grid, using the
// coarse grid's periodic border, and performs no comm3 of its own.
func (s *Solver) interp(z, u *array.Array) {
	mm := z.Shape()[0]
	n := u.Shape()[0]
	zd, ud := z.Data(), u.Data()
	s.pFor("interp", mm-1, func(lo, hi, worker int) {
		z1, z2, z3 := s.buf1, s.buf2, s.buf3
		if worker != 0 {
			z1 = make([]float64, mm)
			z2 = make([]float64, mm)
			z3 = make([]float64, mm)
		}
		for c3 := lo; c3 < hi; c3++ {
			for c2 := 0; c2 < mm-1; c2++ {
				base := (c3*mm + c2) * mm      // z(·, c2,   c3)
				baseJ := (c3*mm + c2 + 1) * mm // z(·, c2+1, c3)
				baseK := ((c3+1)*mm + c2) * mm // z(·, c2,   c3+1)
				baseJK := ((c3+1)*mm + c2 + 1) * mm
				zB, zJ := zd[base:base+mm], zd[baseJ:baseJ+mm]
				zK, zJK := zd[baseK:baseK+mm], zd[baseJK:baseJK+mm]
				for b := 0; b < mm; b++ {
					z1[b] = zJ[b] + zB[b]
					z2[b] = zK[b] + zB[b]
					z3[b] = zJK[b] + zK[b] + z1[b]
				}
				f00 := (2*c3*n + 2*c2) * n
				f01 := (2*c3*n + 2*c2 + 1) * n
				f10 := ((2*c3+1)*n + 2*c2) * n
				f11 := ((2*c3+1)*n + 2*c2 + 1) * n
				u00, u01 := ud[f00:f00+n], ud[f01:f01+n]
				u10, u11 := ud[f10:f10+n], ud[f11:f11+n]
				for b := 0; b < mm-1; b++ {
					u00[2*b] += zB[b]
					u00[2*b+1] += 0.5 * (zB[b+1] + zB[b])
				}
				for b := 0; b < mm-1; b++ {
					u01[2*b] += 0.5 * z1[b]
					u01[2*b+1] += 0.25 * (z1[b] + z1[b+1])
				}
				for b := 0; b < mm-1; b++ {
					u10[2*b] += 0.5 * z2[b]
					u10[2*b+1] += 0.25 * (z2[b] + z2[b+1])
				}
				for b := 0; b < mm-1; b++ {
					u11[2*b] += 0.25 * z3[b]
					u11[2*b+1] += 0.125 * (z3[b] + z3[b+1])
				}
			}
		}
	})
}

// --- driver ---------------------------------------------------------------------

// MG3P performs one V-cycle (mg.f subroutine mg3P): restrict the residual
// to the coarsest level, smooth there, then interpolate, re-evaluate the
// residual and smooth on each level back up to the finest.
func (s *Solver) MG3P() {
	lt := s.lt
	for k := lt; k >= 2; k-- {
		s.probe("rprj3", k, func() { s.rprj3(s.r[k], s.r[k-1]) })
	}
	s.u[1].Zero()
	s.probe("psinv", 1, func() { s.psinv(s.r[1], s.u[1]) })
	for k := 2; k <= lt-1; k++ {
		k := k
		s.u[k].Zero()
		s.probe("interp", k, func() { s.interp(s.u[k-1], s.u[k]) })
		s.probe("resid", k, func() { s.resid(s.u[k], s.r[k], s.r[k]) })
		s.probe("psinv", k, func() { s.psinv(s.r[k], s.u[k]) })
	}
	s.probe("interp", lt, func() { s.interp(s.u[lt-1], s.u[lt]) })
	s.probe("resid", lt, func() { s.resid(s.u[lt], s.v, s.r[lt]) })
	s.probe("psinv", lt, func() { s.psinv(s.r[lt], s.u[lt]) })
}

// EvalResid recomputes the finest-level residual r = v − A·u — the resid
// call that precedes and follows every mg3P in the benchmark loop.
func (s *Solver) EvalResid() {
	s.probe("resid", s.lt, func() { s.resid(s.u[s.lt], s.v, s.r[s.lt]) })
}

// Norms returns the current residual norms (rnm2 is the verified value).
func (s *Solver) Norms() (rnm2, rnmu float64) {
	return nas.Norm2u3(s.r[s.lt], s.Class.N)
}

// Run executes the complete benchmark: reset, initial residual, then
// Class.Iter iterations of (MG3P; resid), returning the final norms.
// The work after Reset is exactly the timed section of the NPB rules.
func (s *Solver) Run() (rnm2, rnmu float64) {
	s.Reset()
	s.EvalResid()
	for it := 0; it < s.Class.Iter; it++ {
		s.MG3P()
		s.EvalResid()
	}
	return s.Norms()
}
