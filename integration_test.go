// Cross-implementation integration tests: the repository contains five
// ways to compute the same benchmark — the paper's three contestants plus
// the two future-work variants — and they must all agree on the official
// problem.
package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/mgmpi"
	"repro/internal/nas"
	"repro/internal/periodic"
	wl "repro/internal/withloop"
)

// runAll executes every implementation on the given class and returns the
// final rnm2 norms keyed by name.
func runAll(t *testing.T, class nas.Class) map[string]float64 {
	t.Helper()
	out := map[string]float64{}

	fs := f77.New(class)
	out["f77"], _ = fs.Run()

	cs := cport.New(class)
	out["cport"], _ = cs.Run()

	sb := core.NewBenchmark(class, wl.Default())
	out["sac"], _ = sb.Run()

	pb := periodic.NewBenchmark(class, wl.Default())
	out["periodic"], _ = pb.Run()

	ms := mgmpi.New(class, 4)
	out["mgmpi(4)"], _ = ms.Run()

	return out
}

// Five implementations, one answer: every implementation passes the
// official verification and agrees with the reference within the sharper
// cross-implementation tolerance.
func TestAllImplementationsAgreeClassS(t *testing.T) {
	norms := runAll(t, nas.ClassS)
	ref := norms["f77"]
	for name, got := range norms {
		if verified, ok := nas.ClassS.Verify(got); !ok || !verified {
			t.Errorf("%s: rnm2 = %.13e did not pass the official verification", name, got)
		}
		if rel := math.Abs(got-ref) / ref; rel > 1e-10 {
			t.Errorf("%s: rnm2 = %.15e vs f77 %.15e (relative %.2e)", name, got, ref, rel)
		}
	}
	// The exact-equality classes: cport is a statement-level twin of f77;
	// mgmpi's slab kernels are too (modulo the norm reduction order, which
	// for 4 ranks of class S still reassociates — allow the tolerance
	// above); periodic ≡ sac bitwise.
	if norms["cport"] != norms["f77"] {
		t.Errorf("cport diverges from f77: %.17e vs %.17e", norms["cport"], norms["f77"])
	}
	if norms["periodic"] != norms["sac"] {
		t.Errorf("periodic diverges from sac: %.17e vs %.17e", norms["periodic"], norms["sac"])
	}
}

func TestAllImplementationsAgreeClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W cross-check skipped in -short")
	}
	norms := runAll(t, nas.ClassW)
	for name, got := range norms {
		if verified, ok := nas.ClassW.Verify(got); !ok || !verified {
			t.Errorf("%s: class W rnm2 = %.13e did not verify", name, got)
		}
	}
}

// Class A end-to-end for the paper's two headline implementations (~8 s).
func TestClassAEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("class A skipped in -short")
	}
	sb := core.NewBenchmark(nas.ClassA, wl.Default())
	sac, _ := sb.Run()
	if verified, ok := nas.ClassA.Verify(sac); !ok || !verified {
		t.Fatalf("SAC class A rnm2 = %.13e did not verify", sac)
	}
}

// Class B is the first of the paper's "larger problem sizes" (future
// work). Expensive (~25 s): runs only in the full suite.
func TestVerifyClassB(t *testing.T) {
	if testing.Short() {
		t.Skip("class B (256³, 20 iterations) skipped in -short")
	}
	s := f77.New(nas.ClassB)
	rnm2, _ := s.Run()
	if verified, ok := nas.ClassB.Verify(rnm2); !ok || !verified {
		want, _, _ := nas.ClassB.VerifyValue()
		t.Fatalf("class B rnm2 = %.13e, want %.13e", rnm2, want)
	}
}
