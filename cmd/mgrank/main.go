// Command mgrank is one rank of a distributed NAS-MG solve: N processes,
// each running this binary with a distinct -rank, form a TCP mesh and
// solve the slab-decomposed benchmark together — the multi-process
// counterpart of `mg -impl mpi`, whose per-iteration rnm2 it matches
// bit for bit.
//
// Rank 0 is the rendezvous point. It binds -addr (use :0 for an
// ephemeral port), prints the bound address as
//
//	MGRANK LISTEN <host:port>
//
// on stdout, and waits for the other ranks. Every other rank dials that
// address with -join:
//
//	mgrank -rank 0 -np 4 -class S -addr 127.0.0.1:15300 &
//	mgrank -rank 1 -np 4 -class S -join 127.0.0.1:15300 &
//	mgrank -rank 2 -np 4 -class S -join 127.0.0.1:15300 &
//	mgrank -rank 3 -np 4 -class S -join 127.0.0.1:15300 &
//	wait
//
// Each rank exits 0 only if its solve completed and the final rnm2
// passed NPB verification. A dead or misbehaving peer surfaces as a
// typed transport error within the -timeout deadline, printed to stderr
// with the culprit rank named, and exit status 1 — never a hang.
// -die-after-iter kills this rank abruptly (exit 3, sockets torn down
// by the kernel) after the given V-cycle iteration, for fault-injection
// tests.
//
// Observability (DESIGN.md §3.5): -trace FILE writes this rank's
// JSON-lines event stream — kernel spans plus one pairable send/recv
// event per transport call, anchored by a "hello" event emitted the
// moment the mesh bootstrap completes, which seeds mgtrace's clock
// alignment. Merge the per-rank files with `mgtrace rank*.jsonl` (or
// -perfetto / -commreport). -metrics-addr serves the transport's
// per-peer counters as a Prometheus /metrics endpoint, announced on
// stdout as MGRANK METRICS <host:port>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/mgmpi"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/nas"
	"repro/internal/obs"
)

// result is the -json report, one object per rank: the solve verdict
// plus the full mpi.Stats breakdown, including the per-(peer, tag) rows
// and the blocked-time / queue-depth histograms (power-of-two buckets).
type result struct {
	Rank          int     `json:"rank"`
	Ranks         int     `json:"np"`
	Class         string  `json:"class"`
	Overlap       bool    `json:"overlap,omitempty"`
	Threads       int     `json:"threads,omitempty"`
	Rnm2          float64 `json:"rnm2"`
	Rnm2Bits      uint64  `json:"rnm2Bits"` // exact bit pattern, for differential checks
	Rnmu          float64 `json:"rnmu"`
	Verified      bool    `json:"verified"`
	Seconds       float64 `json:"seconds"`
	Messages      uint64  `json:"messages"`
	Bytes         uint64  `json:"bytes"`
	WireBytes     uint64  `json:"wireBytes"`
	ExchangeNanos int64   `json:"exchangeNanos"`

	Peers          []mpi.PeerStat `json:"peers,omitempty"`
	BlockedHist    mpi.Hist       `json:"blockedHist,omitempty"`
	QueueDepthHist mpi.Hist       `json:"queueDepthHist,omitempty"`
}

// envBool reads an environment toggle: set and not one of "" / "0" /
// "false" / "no" means on.
func envBool(name string) bool {
	switch os.Getenv(name) {
	case "", "0", "false", "no":
		return false
	}
	return true
}

func main() {
	var (
		rank         = flag.Int("rank", 0, "this process's rank id, 0..np-1")
		np           = flag.Int("np", 1, "world size (number of mgrank processes)")
		className    = flag.String("class", "S", "NPB size class: S, W, A, B or C")
		addr         = flag.String("addr", "127.0.0.1:0", "rank 0: rendezvous listen address (use :0 for an ephemeral port)")
		join         = flag.String("join", "", "ranks 1..np-1: rendezvous address printed by rank 0")
		jsonOut      = flag.Bool("json", false, "print the per-rank result as one JSON object")
		timeout      = flag.Duration("timeout", 30*time.Second, "I/O deadline: a peer silent for this long is declared dead")
		retries      = flag.Int("retries", 60, "rendezvous/mesh dial attempts")
		backoff      = flag.Duration("backoff", 250*time.Millisecond, "pause between dial attempts")
		dieAfterIter = flag.Int("die-after-iter", 0, "fault injection: exit(3) abruptly after this V-cycle iteration (0 = never)")
		logFormat    = flag.String("log-format", "text", "structured log format for stderr diagnostics: text or json")
		tracePath    = flag.String("trace", "", "write this rank's JSON-lines trace (spans + pairable send/recv events) to this file")
		metricsAddr  = flag.String("metrics-addr", "", "serve the transport's per-peer counters as Prometheus text on this address's /metrics")
		overlap      = flag.Bool("overlap", envBool("MG_OVERLAP"), "overlap the halo exchange with interior compute (nonblocking Isend/Irecv; default $MG_OVERLAP)")
		threads      = flag.Int("threads", 1, "worker threads per rank for the plane loops (hybrid MPI×SMP; 1 = serial)")
	)
	flag.Parse()

	// Diagnostics go to stderr as structured log lines; the stdout
	// protocol (the MGRANK LISTEN line and the result report) is
	// unchanged — launchers parse it.
	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgrank:", err)
		os.Exit(2)
	}
	logger = logger.With("rank", *rank)
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	class, err := nas.ClassByName(*className)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := mpinet.Config{
		Rank:        *rank,
		Size:        *np,
		Class:       class.Name,
		DialRetries: *retries,
		DialBackoff: *backoff,
		IOTimeout:   *timeout,
	}

	var transport *mpinet.Transport
	if *rank == 0 {
		cfg.Addr = *addr
		rz, err := mpinet.Listen(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		// The launcher (and harness.RunDistributed) scans stdout for
		// this line to learn the ephemeral port before starting the
		// other ranks.
		fmt.Printf("MGRANK LISTEN %s\n", rz.Addr())
		os.Stdout.Sync()
		transport, err = rz.Accept()
		if err != nil {
			fatalf("rendezvous failed: %v", err)
		}
	} else {
		if *join == "" {
			fatalf("ranks 1..np-1 need -join with rank 0's rendezvous address")
		}
		cfg.Addr = *join
		transport, err = mpinet.Join(cfg)
		if err != nil {
			fatalf("join failed: %v", err)
		}
	}
	defer transport.Close()

	// The tracer is created the moment the mesh bootstrap completes, and
	// the "hello" anchor is its first event: every rank's hello marks
	// (nearly) the same wall instant, which is the coarse clock alignment
	// mgtrace falls back on when paired traffic is missing.
	var tracer *metrics.Tracer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer tf.Close()
		tracer = metrics.NewTracer(tf)
		defer tracer.Close()
		tracer.Emit(metrics.Event{Ev: "hello", Rank: *rank})
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		// Announced like the rendezvous address, so launchers can scrape
		// an ephemeral :0 port.
		fmt.Printf("MGRANK METRICS %s\n", ln.Addr())
		os.Stdout.Sync()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			st := transport.Stats() // safe concurrently with the solve
			if err := st.WritePrometheus(w, *rank); err != nil {
				logger.Error("metrics scrape failed", "err", err)
			}
		})
		srv := &http.Server{Handler: mux}
		defer srv.Close()
		go srv.Serve(ln)
	}

	solver, err := mgmpi.NewWithTransport(class, transport)
	if err != nil {
		fatalf("%v", err)
	}
	solver.Trace = tracer
	solver.Overlap = *overlap
	solver.Threads = *threads
	if *dieAfterIter > 0 {
		solver.OnIter = func(rank, iter int) {
			if iter == *dieAfterIter {
				logger.Error("dying after iteration (fault injection)", "iter", iter)
				os.Exit(3)
			}
		}
	}

	// Communication failures surface as panics from the mpi.Comm veneer,
	// already naming the peer rank and tag; turn them into a diagnosable
	// non-zero exit.
	var rnm2, rnmu float64
	var seconds float64
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		start := time.Now()
		rnm2, rnmu = solver.RunRank()
		seconds = time.Since(start).Seconds()
		return nil
	}()
	if err != nil {
		// Close before exiting so the queued abort relay (naming the
		// dead rank) reaches the surviving peers — os.Exit would drop
		// it on the floor and they would only see this process's EOF.
		// The tracer flushes first: the partial trace is still pairable
		// up to the failure point (and mgtrace tolerates a torn tail).
		tracer.Close()
		transport.Close()
		fatalf("rank %d: solve failed: %v", *rank, err)
	}
	if err := tracer.Close(); err != nil {
		fatalf("rank %d: trace write failed: %v", *rank, err)
	}

	verified, known := class.Verify(rnm2)
	ok := verified && known
	st := solver.Stats()
	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(result{
			Rank: *rank, Ranks: *np, Class: string(class.Name),
			Overlap: *overlap, Threads: *threads,
			Rnm2: rnm2, Rnm2Bits: math.Float64bits(rnm2), Rnmu: rnmu,
			Verified: ok, Seconds: seconds,
			Messages: st.Messages, Bytes: st.Bytes,
			WireBytes: st.WireBytes, ExchangeNanos: st.ExchangeNanos,
			Peers: st.Peers, BlockedHist: st.BlockedHist, QueueDepthHist: st.QueueDepthHist,
		})
	} else {
		verdict := "VERIFICATION FAILED"
		if ok {
			verdict = "VERIFICATION SUCCESSFUL"
		}
		fmt.Printf("mgrank: rank %d/%d class %c: rnm2 %.10e  %s  (%.3fs, %d msgs, %d payload B, %d wire B)\n",
			*rank, *np, class.Name, rnm2, verdict, seconds, st.Messages, st.Bytes, st.WireBytes)
	}
	if !ok {
		os.Exit(1)
	}
}
