// Command mg runs the NAS MG benchmark with any of the three
// implementations the paper compares:
//
//	mg -impl sac   -class S             # the paper's high-level SAC program
//	mg -impl f77   -class A             # the NPB 2.3 Fortran-77 reference port
//	mg -impl c     -class W -threads 4  # the C/OpenMP port, 4 workers
//	mg -impl sac   -class S -opt 0      # unoptimized WITH-loop evaluation
//	mg -impl f77   -class S -threads 4 -mode autopar
//	mg -impl periodic -class S          # future-work: no artificial borders
//	mg -impl mpi   -class S -threads 4  # future-work: slab-decomposed MPI style
//
// It prints the timed-section duration, the final residual norms, and the
// official NPB verification verdict. -json replaces the human-readable
// output with a single JSON object (implementation, class, threads, timed
// seconds, Mop/s, norms, verification) for scripting:
//
//	mg -impl sac -class S -json | jq .verified
//
// Observability (SAC implementation only):
//
//	mg -impl sac -class S -metrics              # per-(kernel, level) table
//	mg -impl sac -class S -trace run.jsonl      # JSON-lines V-cycle trace
//	mg -impl sac -class S -health               # convergence-health verdict
//	mg -impl sac -class A -http :8080           # expvar + pprof + /metrics
//
// -http serves the standard net/http/pprof handlers, an "mg.metrics"
// expvar variable holding the live metrics snapshot as JSON, and a
// Prometheus text-format /metrics endpoint (kernel counters, duration
// histograms and the mg_health_* series). -health attaches the runtime
// convergence monitor (internal/health): per-iteration residual
// contraction tracking, sampled NaN/Inf guards and worker-imbalance
// gauges, summarized as a healthy/stalled/diverging verdict. -json runs
// also carry the monitor and report it in the summary's "health" block.
// All of these flags share one collector/tracer/monitor set, so every
// exposition path describes the same run (-impl mpi additionally feeds
// the tracer rank-tagged V-cycle spans).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/mgmpi"
	"repro/internal/nas"
	"repro/internal/periodic"
	"repro/internal/sched"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

func main() {
	var (
		implName   = flag.String("impl", "sac", "implementation: sac, f77, c, periodic or mpi")
		className  = flag.String("class", "S", "NPB size class: S, W, A, B or C")
		threads    = flag.Int("threads", 1, "worker count (1 = sequential)")
		mode       = flag.String("mode", "fullpar", "f77 parallelization mode: serial, autopar or fullpar")
		opt        = flag.Int("opt", 3, "SAC optimization level 0-3")
		quiet      = flag.Bool("quiet", false, "print only the verification verdict")
		dump       = flag.String("dump", "", "write the solution grid to this file (binary, see internal/array)")
		npb        = flag.Bool("npb", false, "print the canonical NPB result block")
		jsonOut    = flag.Bool("json", false, "print the solve summary as a single JSON object (implies -quiet)")
		withStats  = flag.Bool("metrics", false, "collect per-(kernel, level) metrics (sac only) and print the table")
		traceFile  = flag.String("trace", "", "write a JSON-lines V-cycle event trace (sac and mpi) to this file")
		httpAddr   = flag.String("http", "", "serve expvar (/debug/vars, incl. mg.metrics), pprof and Prometheus /metrics on this address while running")
		withHealth = flag.Bool("health", false, "monitor convergence health (sac only) and print the verdict")
		variant    = flag.String("variant", "", "force the plane-kernel backend (sac only): scalar, buffered or simd (default: per-level autotuner choice)")
		overlap    = flag.Bool("overlap", false, "mpi only: overlap the halo exchange with interior compute (nonblocking Isend/Irecv; -threads is the rank count)")
	)
	flag.Parse()

	if *variant != "" && !tune.ValidVariant(*variant) {
		fmt.Fprintf(os.Stderr, "mg: unknown -variant %q (want %s, %s or %s)\n",
			*variant, tune.VariantScalar, tune.VariantBuffered, tune.VariantSIMD)
		os.Exit(2)
	}

	if *jsonOut {
		*quiet = true
	}

	class, err := nas.ClassByName(*className)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One shared sink set for every flag combination (see obs.go). The
	// health monitor rides along with -json and -http runs so the summary
	// block and /metrics endpoint are populated; it is sac-only, like the
	// metrics collector.
	o := &obs{}
	healthOn := *withHealth || *jsonOut || *httpAddr != ""
	if *withStats || *httpAddr != "" || (healthOn && *implName == "sac") {
		o.collector = metrics.NewCollector(max(*threads, runtime.GOMAXPROCS(0)))
	}
	if healthOn && *implName == "sac" {
		o.monitor = health.New(health.Config{})
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mg:", err)
			os.Exit(1)
		}
		o.tracer = metrics.NewTracer(f)
		defer func() {
			if err := o.tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mg: trace:", err)
			}
			f.Close()
		}()
	}
	if *httpAddr != "" {
		publishMetricsVar(o.collector)
		http.HandleFunc("/metrics", promHandler(o))
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mg:", err)
			os.Exit(1)
		}
		defer ln.Close()
		if !*quiet {
			fmt.Printf("serving expvar/pprof/metrics on http://%s/\n", ln.Addr())
		}
		go http.Serve(ln, nil)
	}

	var (
		rnm2, rnmu float64
		elapsed    time.Duration
		solution   *array.Array
	)
	switch *implName {
	case "sac":
		var env *wl.Env
		if *threads > 1 {
			env = wl.Parallel(*threads)
		} else {
			env = wl.Default()
		}
		if *opt < 0 || *opt > 3 {
			fmt.Fprintln(os.Stderr, "mg: -opt must be 0..3")
			os.Exit(2)
		}
		env.Opt = wl.OptLevel(*opt)
		env.Variant = *variant
		o.attach(env)
		b := core.NewBenchmark(class, env)
		b.Reset()
		start := time.Now()
		rnm2, rnmu = b.Solve()
		elapsed = time.Since(start)
		solution = b.U()
		env.Close()
		if *withStats {
			o.snapshot().WriteReport(os.Stdout, core.KernelCost)
		}
		if *withHealth && !*quiet {
			o.healthReport().WriteText(os.Stdout)
		}
	case "f77":
		var pool *sched.Pool
		fmode := f77.Serial
		if *threads > 1 {
			pool = sched.NewPool(*threads)
			switch *mode {
			case "serial":
				fmode = f77.Serial
			case "autopar":
				fmode = f77.AutoPar
			case "fullpar":
				fmode = f77.FullPar
			default:
				fmt.Fprintln(os.Stderr, "mg: unknown -mode", *mode)
				os.Exit(2)
			}
		}
		s := f77.NewParallel(class, pool, fmode)
		s.Reset()
		start := time.Now()
		s.EvalResid()
		for it := 0; it < class.Iter; it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()
		elapsed = time.Since(start)
		solution = s.U()
		if pool != nil {
			pool.Close()
		}
	case "c":
		var pool *sched.Pool
		if *threads > 1 {
			pool = sched.NewPool(*threads)
		}
		s := cport.NewParallel(class, pool)
		s.Reset()
		start := time.Now()
		s.EvalResid()
		for it := 0; it < class.Iter; it++ {
			s.MG3P()
			s.EvalResid()
		}
		rnm2, rnmu = s.Norms()
		elapsed = time.Since(start)
		solution = s.U()
		if pool != nil {
			pool.Close()
		}
	case "periodic":
		var env *wl.Env
		if *threads > 1 {
			env = wl.Parallel(*threads)
		} else {
			env = wl.Default()
		}
		b := periodic.NewBenchmark(class, env)
		b.Reset()
		start := time.Now()
		rnm2, rnmu = b.Solve()
		elapsed = time.Since(start)
		solution = b.U()
		env.Close()
	case "mpi":
		s := mgmpi.New(class, *threads)
		s.Overlap = *overlap
		s.Trace = o.tracer
		start := time.Now()
		rnm2, rnmu = s.Run()
		elapsed = time.Since(start)
		st := s.Stats()
		if !*quiet {
			fmt.Printf("communication: %d messages, %.2f MB payload, %.3fs blocked in exchanges\n",
				st.Messages, float64(st.Bytes)/1e6, time.Duration(st.ExchangeNanos).Seconds())
			fmt.Println("(in-process channel transport; `mgrank` runs the same solve as real" +
				" processes over TCP and additionally reports wire bytes)")
		}
	default:
		fmt.Fprintln(os.Stderr, "mg: unknown -impl", *implName,
			"(want sac, f77, c, periodic or mpi)")
		os.Exit(2)
	}

	if *dump != "" {
		if solution == nil {
			fmt.Fprintln(os.Stderr, "mg: -dump is not supported for -impl", *implName,
				"(the solution is distributed)")
			os.Exit(2)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mg:", err)
			os.Exit(1)
		}
		if _, err := solution.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "mg: dump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mg: dump:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("solution grid written to %s\n", *dump)
		}
	}

	verified, known := class.Verify(rnm2)
	if *jsonOut {
		// One JSON object on stdout, for scripting. Mop/s is the NPB
		// whole-benchmark throughput metric; verified is false for
		// classes without a reference value (see known).
		summary := struct {
			Impl     string        `json:"impl"`
			Class    string        `json:"class"`
			Threads  int           `json:"threads"`
			Seconds  float64       `json:"seconds"`
			Mops     float64       `json:"mops"`
			Rnm2     float64       `json:"rnm2"`
			Rnmu     float64       `json:"rnmu"`
			Verified bool          `json:"verified"`
			Known    bool          `json:"known"`
			Health   health.Report `json:"health"`
		}{
			Impl: *implName, Class: string(class.Name), Threads: *threads,
			Seconds: elapsed.Seconds(),
			Mops:    class.FlopCount() / elapsed.Seconds() / 1e6,
			Rnm2:    rnm2, Rnmu: rnmu,
			Verified: known && verified, Known: known,
			Health: o.healthReport(),
		}
		if err := json.NewEncoder(os.Stdout).Encode(summary); err != nil {
			fmt.Fprintln(os.Stderr, "mg:", err)
			os.Exit(1)
		}
		if known && !verified {
			os.Exit(1)
		}
		return
	}
	if *npb {
		// The report block the official NPB binaries print.
		status := "UNVERIFIED"
		if known && verified {
			status = "SUCCESSFUL"
		} else if known {
			status = "FAILED"
		}
		fmt.Printf("\n MG Benchmark Completed.\n")
		fmt.Printf(" Class           =            %c\n", class.Name)
		fmt.Printf(" Size            = %12d\n", class.N)
		fmt.Printf(" Iterations      = %12d\n", class.Iter)
		fmt.Printf(" Time in seconds = %12.2f\n", elapsed.Seconds())
		fmt.Printf(" Mop/s total     = %12.2f\n", class.FlopCount()/elapsed.Seconds()/1e6)
		fmt.Printf(" Operation type  =   floating point\n")
		fmt.Printf(" Verification    =   %s\n", status)
		fmt.Printf(" L2 Norm         = %21.13e\n\n", rnm2)
	}
	if !*quiet {
		fmt.Printf("NAS MG, class %s, implementation %s, %d thread(s)\n",
			class, *implName, *threads)
		fmt.Printf("timed section: %v\n", elapsed)
		fmt.Printf("rnm2 = %.13e   rnmu = %.13e\n", rnm2, rnmu)
		if ref, official, ok := class.VerifyValue(); ok {
			src := "official NPB"
			if !official {
				src = "repository reference"
			}
			fmt.Printf("reference (%s) = %.13e\n", src, ref)
		}
	}
	switch {
	case !known:
		fmt.Println("VERIFICATION: no reference value for this class")
	case verified:
		fmt.Println("VERIFICATION SUCCESSFUL")
	default:
		fmt.Println("VERIFICATION FAILED")
		os.Exit(1)
	}
}
