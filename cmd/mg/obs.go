package main

import (
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	wl "repro/internal/withloop"
)

// obs bundles the observability sinks that the -metrics, -trace, -http,
// -health and -json flags share. Every flag combination works against the
// same collector/tracer/monitor instances, so the expvar variable, the
// /metrics Prometheus endpoint, the printed report and the JSON summary
// all describe the same run. (Previously each consumer wired its own
// view; the scheduler pool in particular never saw the tracer, so traces
// were missing the per-worker spans.)
type obs struct {
	collector *metrics.Collector
	tracer    *metrics.Tracer
	monitor   *health.Monitor
}

// attach installs the sinks on a SAC environment. Nil fields are no-ops;
// the Attach helpers also wire the environment's scheduler pool so worker
// busy accounting and "wspan" trace events flow into the same instances.
func (o *obs) attach(env *wl.Env) {
	if o.collector != nil {
		env.AttachMetrics(o.collector)
	}
	if o.tracer != nil {
		env.AttachTrace(o.tracer)
	}
	env.Health = o.monitor
}

// snapshot returns the collector's merged counters (a zero Snapshot when
// metrics are off, which the health report tolerates).
func (o *obs) snapshot() metrics.Snapshot {
	if o.collector == nil {
		return metrics.Snapshot{}
	}
	return o.collector.Snapshot()
}

// healthReport is the run's convergence-health summary (verdict
// "disabled" when no monitor was attached).
func (o *obs) healthReport() health.Report {
	return o.monitor.Report(o.snapshot())
}

// promHandler serves the Prometheus text-format exposition (0.0.4) of
// the shared collector and health monitor.
func promHandler(o *obs) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := o.snapshot()
		snap.WritePrometheus(w, core.KernelCost)
		o.monitor.Report(snap).WritePrometheus(w)
	}
}

// The "mg.metrics" expvar reads through this pointer so the variable can
// be registered exactly once per process (expvar panics on duplicates)
// while tests re-point it at fresh collectors.
var (
	expvarCollector atomic.Pointer[metrics.Collector]
	expvarOnce      sync.Once
)

// publishMetricsVar exposes the collector's live snapshot as the
// "mg.metrics" expvar. The snapshot merges the shards on demand, so the
// endpoint sees live counters mid-solve.
func publishMetricsVar(c *metrics.Collector) {
	expvarCollector.Store(c)
	expvarOnce.Do(func() {
		expvar.Publish("mg.metrics", expvar.Func(func() any {
			if c := expvarCollector.Load(); c != nil {
				return c.Snapshot()
			}
			return metrics.Snapshot{}
		}))
	})
}
