package main

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/nas"
	wl "repro/internal/withloop"
)

// solveWithObs runs a class-S SAC solve with the shared sink set
// attached, the way main does.
func solveWithObs(t *testing.T, o *obs, threads int) (rnm2 float64) {
	t.Helper()
	var env *wl.Env
	if threads > 1 {
		env = wl.Parallel(threads)
	} else {
		env = wl.Default()
	}
	o.attach(env)
	b := core.NewBenchmark(nas.ClassS, env)
	b.Reset()
	rnm2, _ = b.Solve()
	env.Close()
	if verified, ok := nas.ClassS.Verify(rnm2); !ok || !verified {
		t.Fatalf("instrumented solve did not verify: rnm2 = %.13e", rnm2)
	}
	return rnm2
}

// The expvar "mg.metrics" variable and the written report must describe
// the same collector: every flag combination shares one instance, so the
// two exposition paths may never disagree.
func TestExpvarMatchesReport(t *testing.T) {
	o := &obs{collector: metrics.NewCollector(2)}
	publishMetricsVar(o.collector)
	solveWithObs(t, o, 2)

	v := expvar.Get("mg.metrics")
	if v == nil {
		t.Fatal("mg.metrics not published")
	}
	var fromVar metrics.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &fromVar); err != nil {
		t.Fatalf("mg.metrics is not a snapshot: %v", err)
	}
	direct := o.snapshot()
	if len(fromVar.Kernels) == 0 || len(fromVar.Kernels) != len(direct.Kernels) {
		t.Fatalf("expvar has %d kernel rows, report has %d",
			len(fromVar.Kernels), len(direct.Kernels))
	}
	for i, k := range direct.Kernels {
		got := fromVar.Kernels[i]
		if got.Kernel != k.Kernel || got.Level != k.Level ||
			got.Invocations != k.Invocations || got.Points != k.Points {
			t.Fatalf("row %d differs: expvar %+v, report %+v", i, got, k)
		}
	}

	// Re-pointing at a fresh collector must not panic (expvar forbids
	// duplicate registration) and must switch the variable over.
	c2 := metrics.NewCollector(1)
	publishMetricsVar(c2)
	var after metrics.Snapshot
	if err := json.Unmarshal([]byte(expvar.Get("mg.metrics").String()), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Kernels) != 0 {
		t.Fatalf("mg.metrics still serves the old collector: %d rows", len(after.Kernels))
	}
}

// The /metrics endpoint must emit parseable Prometheus text format with
// both the kernel series and the health series, sourced from the same
// run the JSON summary describes.
func TestPromEndpointRoundTrip(t *testing.T) {
	o := &obs{
		collector: metrics.NewCollector(2),
		monitor:   health.New(health.Config{}),
	}
	solveWithObs(t, o, 2)

	srv := httptest.NewServer(promHandler(o))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not Prometheus text format", ct)
	}
	samples, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("endpoint output does not round-trip: %v", err)
	}
	idx := metrics.PromIndex(samples)
	for _, name := range []string{
		"mg_kernel_invocations_total",
		"mg_kernel_duration_seconds_bucket",
		"mg_health_verdict",
		"mg_health_convergence_rate",
		"mg_health_worker_imbalance",
	} {
		if len(idx[name]) == 0 {
			t.Fatalf("endpoint is missing %s", name)
		}
	}
	// The verdict state series marks exactly one verdict, and for a
	// verified class-S run it must be "healthy".
	var active []string
	for _, s := range idx["mg_health_verdict"] {
		if s.Value == 1 {
			active = append(active, s.Label("verdict"))
		}
	}
	if len(active) != 1 || active[0] != "healthy" {
		t.Fatalf("active verdicts = %v, want [healthy]", active)
	}
	// Endpoint and report agree on the invocation totals.
	direct := o.snapshot()
	var fromProm, fromSnap uint64
	for _, s := range idx["mg_kernel_invocations_total"] {
		fromProm += uint64(s.Value)
	}
	for _, k := range direct.Kernels {
		fromSnap += k.Invocations
	}
	if fromProm != fromSnap {
		t.Fatalf("endpoint totals %d invocations, snapshot %d", fromProm, fromSnap)
	}
}

// The -json health block for a verified run: healthy verdict, a
// convergence rate consistent with the observed norms, balanced workers.
func TestHealthReportFromSolve(t *testing.T) {
	o := &obs{
		collector: metrics.NewCollector(2),
		monitor:   health.New(health.Config{}),
	}
	solveWithObs(t, o, 2)
	rep := o.healthReport()
	if rep.Verdict != "healthy" || !rep.OK() {
		t.Fatalf("verdict = %q, want healthy", rep.Verdict)
	}
	if rep.Iterations != nas.ClassS.Iter {
		t.Fatalf("observed %d iterations, want %d", rep.Iterations, nas.ClassS.Iter)
	}
	if rep.ConvergenceRate <= 0 || rep.ConvergenceRate >= rep.ExpectedRate {
		t.Fatalf("convergence rate %g not in (0, %g)", rep.ConvergenceRate, rep.ExpectedRate)
	}
	if rep.WorkerImbalance < 1 {
		t.Fatalf("worker imbalance %g < 1 (max/mean cannot be)", rep.WorkerImbalance)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("report has %d workers, want 2", len(rep.Workers))
	}
	// A disabled monitor must say so rather than fabricate a verdict.
	if rep := (&obs{}).healthReport(); rep.Verdict != "disabled" {
		t.Fatalf("nil monitor verdict = %q", rep.Verdict)
	}
}
