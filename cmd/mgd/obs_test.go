package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jobq"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// postSolveTraced posts one solve with an X-Mg-Trace-Id request header.
func postSolveTraced(t *testing.T, url, body, traceID string) (int, jobq.Result, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res jobq.Result
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode, res, resp.Header
}

// TestDaemonTraceHeaderPropagation pins the ingress half of request
// tracing: a valid X-Mg-Trace-Id is adopted and echoed, an invalid or
// missing one is replaced by a freshly minted ID, and the job's result
// carries the trace ID and its stage breakdown.
func TestDaemonTraceHeaderPropagation(t *testing.T) {
	ts, _ := newTestDaemon(t, jobq.Config{Runners: 1})

	const mine = "0123456789abcdef0123456789abcdef"
	code, res, hdr := postSolveTraced(t, ts.URL, `{"class":"S","wait":true}`, mine)
	if code != http.StatusOK {
		t.Fatalf("solve = %d", code)
	}
	if hdr.Get(obs.TraceHeader) != mine {
		t.Fatalf("echoed trace = %q, want the caller's %q", hdr.Get(obs.TraceHeader), mine)
	}
	if res.TraceID != mine {
		t.Fatalf("result trace = %q, want %q", res.TraceID, mine)
	}
	if res.Stages == nil || res.Stages.TotalSeconds <= 0 || res.Stages.SolveSeconds <= 0 {
		t.Fatalf("result missing its stage breakdown: %+v", res.Stages)
	}

	// An invalid header (uppercase is not canonical W3C form) is replaced
	// by a minted ID, never propagated.
	code, res, hdr = postSolveTraced(t, ts.URL, `{"class":"S","iters":1,"wait":true}`, "NOT-A-TRACE-ID")
	if code != http.StatusOK {
		t.Fatalf("solve = %d", code)
	}
	minted := hdr.Get(obs.TraceHeader)
	if !obs.ValidTraceID(minted) {
		t.Fatalf("minted trace %q is invalid", minted)
	}
	if res.TraceID != minted {
		t.Fatalf("result trace %q != echoed header %q", res.TraceID, minted)
	}

	// The cache hit keeps the submitter's own trace identity: repeat
	// traffic shares the result, not the trace.
	const other = "fedcba9876543210fedcba9876543210"
	code, cached, _ := postSolveTraced(t, ts.URL, `{"class":"S"}`, other)
	if code != http.StatusOK || !cached.Cached {
		t.Fatalf("repeat solve: %d %+v, want a cache hit", code, cached)
	}
	if cached.TraceID != other {
		t.Fatalf("cache-hit trace = %q, want the second caller's %q", cached.TraceID, other)
	}

	// The stage histograms surface in /metrics.
	code, body := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE mgd_stage_seconds histogram",
		`mgd_stage_seconds_bucket{stage="solve",status="done"`,
		`mgd_stage_seconds_count{stage="ingress",status="done"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /v1/stats reports the bound address and the cumulative stage clock.
	code, statsBody := getBody(t, ts.URL+"/v1/stats")
	if code != 200 {
		t.Fatalf("stats = %d", code)
	}
	var stats struct {
		Addr         string             `json:"addr"`
		StageSeconds map[string]float64 `json:"StageSeconds"`
	}
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	if want := strings.TrimPrefix(ts.URL, "http://"); stats.Addr != want {
		t.Fatalf("stats addr = %q, want the bound address %q", stats.Addr, want)
	}
	if stats.StageSeconds[obs.StageSolve] <= 0 {
		t.Fatalf("stats stage seconds missing solve: %v", stats.StageSeconds)
	}
}

// TestDaemonFlightRecorderEndpoint pins GET /debug/flightrecorder: a
// JSON Dump with reason http-request whose ring names recent jobs.
func TestDaemonFlightRecorderEndpoint(t *testing.T) {
	ts, _ := newTestDaemon(t, jobq.Config{Runners: 1})
	code, res, _ := postSolve(t, ts.URL, `{"class":"S","wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("solve = %d", code)
	}

	code, body := getBody(t, ts.URL+"/debug/flightrecorder")
	if code != 200 {
		t.Fatalf("flightrecorder = %d", code)
	}
	var d obs.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("flight recorder snapshot is not JSON: %v", err)
	}
	if d.Reason != obs.ReasonRequest {
		t.Fatalf("snapshot reason = %q, want %q", d.Reason, obs.ReasonRequest)
	}
	if d.JobsSeen < 1 {
		t.Fatalf("snapshot saw %d jobs, want >= 1", d.JobsSeen)
	}
	found := false
	for _, r := range d.Jobs {
		if r.JobID == res.ID && r.State == string(jobq.StateDone) && r.TraceID == res.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot does not name job %s: %s", res.ID, body)
	}
}

// TestDaemonNaNTriggersFlightDump is the anomaly path end to end over
// HTTP: a NaN-poisoned solve fails the job AND leaves a flight-recorder
// dump file on disk naming that job.
func TestDaemonNaNTriggersFlightDump(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestDaemon(t, jobq.Config{
		Run: poisonTenant(jobq.Solver(nil, nil), "chaos"),
		Obs: obs.New(obs.Config{FlightDir: dir}),
	})

	code, res, _ := postSolve(t, ts.URL, `{"class":"S","tenant":"chaos","wait":true}`)
	if code != http.StatusOK || res.State != jobq.StateFailed {
		t.Fatalf("poisoned solve: %d %+v, want a failed job", code, res)
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-*-"+obs.ReasonNonFinite+".json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v), want exactly one non-finite dump", files, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var d obs.Dump
	if err := json.Unmarshal(blob, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	found := false
	for _, r := range d.Jobs {
		if r.JobID == res.ID && r.NonFinite && r.TraceID == res.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump does not name the poisoned job %s: %s", res.ID, blob)
	}
}

// TestDaemonTraceSpanTree pins the whole point of trace propagation:
// with a tracer attached to both the queue and the solver, two
// concurrent jobs interleaving on shared workers yield — per job —
// exactly one connected span tree in the Perfetto export (all of a
// job's spans inside its own track block), with the queue-wait and
// solve stage spans non-overlapping.
func TestDaemonTraceSpanTree(t *testing.T) {
	var buf bytes.Buffer
	tr := metrics.NewTracer(&buf)
	ts, _ := newTestDaemon(t, jobq.Config{
		Runners: 2,
		Run:     jobq.NewSolver(jobq.SolverConfig{Trace: tr}),
		Trace:   tr,
	})

	traces := []string{
		"11111111111111111111111111111111",
		"22222222222222222222222222222222",
	}
	done := make(chan error, len(traces))
	for i, id := range traces {
		i, id := i, id
		go func() {
			body := `{"class":"S","seed":` + []string{"101", "102"}[i] + `,"wait":true}`
			code, res, _ := postSolveTraced(t, ts.URL, body, id)
			if code != http.StatusOK || res.State != jobq.StateDone {
				t.Errorf("traced solve %d: %d %+v", i, code, res)
			}
			done <- nil
		}()
	}
	for range traces {
		<-done
	}
	// The respond-stage events are emitted just after the waiters wake;
	// each terminal job emits 4+ stage events plus its solver stream, so
	// wait for the count to pass the floor and go quiet before sealing.
	prev := -1
	waitFor(t, func() bool {
		n := tr.Events()
		settled := n == prev && n >= 8
		prev = n
		return settled
	}, "trace event stream to settle")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := metrics.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(events)
	if sum.Traces != len(traces) {
		t.Fatalf("summary counts %d traces, want %d", sum.Traces, len(traces))
	}
	stageCount := map[string]int{}
	for _, s := range sum.Stages {
		stageCount[s.Stage] = s.Count
	}
	for _, stage := range []string{obs.StageIngress, obs.StageQueue, obs.StageSolve, obs.StageRespond} {
		if stageCount[stage] != len(traces) {
			t.Errorf("stage %s has %d spans, want one per job: %v", stage, stageCount[stage], sum.Stages)
		}
	}

	// Raw-event check: each job's queue span ends no later than its solve
	// span starts (span end stamp is T, start is T − ns).
	for _, id := range traces {
		var queueEnd, solveStart int64 = -1, -1
		for _, e := range events {
			if e.Trace != id || e.Ev != "stage" {
				continue
			}
			switch e.Stage {
			case obs.StageQueue:
				queueEnd = e.T
			case obs.StageSolve:
				solveStart = e.T - e.Nanos
			}
		}
		if queueEnd < 0 || solveStart < 0 {
			t.Fatalf("trace %s missing queue/solve stage spans", id)
		}
		if queueEnd > solveStart {
			t.Errorf("trace %s: queue span ends at %d, after its solve span starts at %d (overlap)",
				id, queueEnd, solveStart)
		}
	}

	// Perfetto check: every span of one trace lands in that trace's own
	// track block [base, base+stride) — one connected tree per job —
	// and the block carries both its stage spans and its kernel spans.
	ct := metrics.ChromeTraceFrom(events)
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	blocks := map[string]map[int]bool{}
	cats := map[string]map[string]bool{}
	for _, e := range ct.TraceEvents {
		id, _ := e.Args["trace"].(string)
		if id == "" {
			continue
		}
		if blocks[id] == nil {
			blocks[id] = map[int]bool{}
			cats[id] = map[string]bool{}
		}
		blocks[id][e.Tid] = true
		cats[id][e.Cat] = true
	}
	if len(blocks) != len(traces) {
		t.Fatalf("export has %d trace blocks, want %d", len(blocks), len(traces))
	}
	bases := map[int]bool{}
	for id, tids := range blocks {
		base := -1
		for tid := range tids {
			b := metrics.TidJobBase +
				metrics.TidJobStride*((tid-metrics.TidJobBase)/metrics.TidJobStride)
			if tid < metrics.TidJobBase {
				t.Fatalf("trace %s span on non-job tid %d", id, tid)
			}
			if base == -1 {
				base = b
			} else if base != b {
				t.Fatalf("trace %s spans two track blocks (%d and %d) — tree disconnected", id, base, b)
			}
		}
		if bases[base] {
			t.Fatalf("two traces share track block %d", base)
		}
		bases[base] = true
		if !cats[id]["stage"] || !cats[id]["region"] {
			t.Fatalf("trace %s block missing stage or kernel spans: %v", id, cats[id])
		}
	}
}
