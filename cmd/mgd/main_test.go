package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobq"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/obs"
	wl "repro/internal/withloop"
)

// newTestDaemon builds the full HTTP front end over a queue with the
// given config, listening on an ephemeral port. The observer is always
// wired (logs discarded) so tests exercise the real observability path.
func newTestDaemon(t *testing.T, cfg jobq.Config) (*httptest.Server, *jobq.Queue) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Config{})
	}
	q := jobq.New(cfg)
	s := &server{q: q, collector: metrics.NewCollector(1), obs: cfg.Obs, started: time.Now()}
	ts := httptest.NewServer(s.routes())
	s.addr = ts.Listener.Addr().String()
	t.Cleanup(func() {
		ts.Close()
		q.Close()
	})
	return ts, q
}

func postSolve(t *testing.T, url, body string) (int, jobq.Result, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res jobq.Result
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode, res, resp.Header
}

func getJob(t *testing.T, url, id string) (int, jobq.Result) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res jobq.Result
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, res
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// directClassS computes the reference rnm2 the way the one-shot CLI
// does — the value the daemon must reproduce bit for bit.
func directClassS(t *testing.T) float64 {
	t.Helper()
	class, err := nas.ClassByName("S")
	if err != nil {
		t.Fatal(err)
	}
	env := wl.Default()
	defer env.Close()
	b := core.NewBenchmark(class, env)
	rnm2, _ := b.Run()
	return rnm2
}

// TestDaemonLifecycle is the end-to-end integration test: a daemon on a
// random port serves a class-S solve over HTTP whose rnm2 is
// bit-identical to the direct harness solve, answers repeat traffic from
// the result cache, tracks jobs through status endpoints, and exposes
// service metrics.
func TestDaemonLifecycle(t *testing.T) {
	ts, _ := newTestDaemon(t, jobq.Config{Runners: 2})

	// Liveness and readiness before any traffic.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}

	// Synchronous solve over HTTP, checked against the direct solver.
	code, res, _ := postSolve(t, ts.URL, `{"class":"S","wait":true}`)
	if code != http.StatusOK || res.State != jobq.StateDone {
		t.Fatalf("wait-mode solve: %d %+v", code, res)
	}
	want := directClassS(t)
	if res.Rnm2 != want {
		t.Fatalf("daemon rnm2 = %v, direct = %v (must be bit-identical)", res.Rnm2, want)
	}
	if res.Verified == nil || !*res.Verified {
		t.Fatalf("class-S solve not verified: %+v", res)
	}

	// Repeat traffic is a cache hit.
	code, cached, _ := postSolve(t, ts.URL, `{"class":"S"}`)
	if code != http.StatusOK || !cached.Cached || cached.Rnm2 != res.Rnm2 {
		t.Fatalf("repeat solve: %d %+v, want cached copy of the first result", code, cached)
	}

	// Asynchronous flow: 202 + id, then poll the status endpoints.
	code, accepted, _ := postSolve(t, ts.URL, `{"class":"S","iters":2}`)
	if code != http.StatusAccepted || accepted.ID == "" {
		t.Fatalf("async submit: %d %+v", code, accepted)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, st := getJob(t, ts.URL, accepted.ID)
		if code != http.StatusOK {
			t.Fatalf("job status = %d", code)
		}
		if st.State == jobq.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("async job ended %s: %+v", st.State, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unknown ids are 404.
	if code, _ := getJob(t, ts.URL, "ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}

	// Service metrics expose the queue counters.
	code, body := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, series := range []string{"mgd_jobs_completed_total", "mgd_cache_hits_total", "mgd_queue_depth"} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}

// TestDaemonGracefulDrain covers the shutdown path: once draining, the
// daemon turns unready and refuses new work while admitted jobs run to
// completion.
func TestDaemonGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	ts, q := newTestDaemon(t, jobq.Config{Run: func(ctx context.Context, req jobq.Request) (jobq.Result, error) {
		select {
		case <-release:
			return jobq.Result{Rnm2: 7}, nil
		case <-ctx.Done():
			return jobq.Result{}, ctx.Err()
		}
	}})

	code, accepted, _ := postSolve(t, ts.URL, `{"class":"S"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	waitFor(t, func() bool {
		code, _ := getBody(t, ts.URL+"/readyz")
		return code == http.StatusServiceUnavailable
	}, "readyz to report draining")

	if code, _, _ := postSolve(t, ts.URL, `{"class":"S","iters":3}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", code)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, res := getJob(t, ts.URL, accepted.ID)
	if code != http.StatusOK || res.State != jobq.StateDone || res.Rnm2 != 7 {
		t.Fatalf("in-flight job after drain: %d %+v, want done (drain must not drop it)", code, res)
	}
}

// TestDaemonQueueFullRejects covers admission control over HTTP: a full
// queue answers 429 with a Retry-After estimate.
func TestDaemonQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts, _ := newTestDaemon(t, jobq.Config{Capacity: 1, Run: func(ctx context.Context, req jobq.Request) (jobq.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return jobq.Result{Rnm2: 1}, nil
	}})

	if code, _, _ := postSolve(t, ts.URL, `{"class":"S"}`); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	code, _, hdr := postSolve(t, ts.URL, `{"class":"S","iters":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", code)
	}
	retry, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
}

// TestDaemonClientDisconnectCancels covers the wait-mode contract: when
// the submitting client goes away mid-solve and no one else claimed the
// job, the solve is cancelled instead of burning workers for nobody.
func TestDaemonClientDisconnectCancels(t *testing.T) {
	running := make(chan struct{}, 1)
	ts, _ := newTestDaemon(t, jobq.Config{Run: func(ctx context.Context, req jobq.Request) (jobq.Result, error) {
		running <- struct{}{}
		<-ctx.Done()
		return jobq.Result{}, ctx.Err()
	}})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/solve",
		strings.NewReader(`{"class":"S","wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-running // the solve is executing; now the client vanishes
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request returned a response")
	}

	id, err2 := jobq.Request{Class: "S", Wait: true}.Normalize()
	if err2 != nil {
		t.Fatal(err2)
	}
	waitFor(t, func() bool {
		_, res := getJob(t, ts.URL, id.ID())
		return res.State == jobq.StateCancelled
	}, "job to be cancelled after client disconnect")
}

// TestDaemonPoisonedSolveFailsJob covers the chaos hook end to end: a
// NaN-poisoned solve surfaces as a failed job — with the daemon alive
// and serving clean traffic afterwards.
func TestDaemonPoisonedSolveFailsJob(t *testing.T) {
	ts, _ := newTestDaemon(t, jobq.Config{
		Run: poisonTenant(jobq.Solver(nil, nil), "chaos"),
	})

	code, res, _ := postSolve(t, ts.URL, `{"class":"S","tenant":"chaos","wait":true}`)
	if code != http.StatusOK || res.State != jobq.StateFailed {
		t.Fatalf("poisoned solve: %d %+v, want a failed job", code, res)
	}
	if !strings.Contains(res.Error, "non-finite") {
		t.Fatalf("failure reason %q does not name the non-finite norm", res.Error)
	}

	// The daemon survives: liveness holds and an unpoisoned tenant's
	// solve of the same problem re-runs (no cached failure) and verifies.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz after poison = %d", code)
	}
	code, clean, _ := postSolve(t, ts.URL, `{"class":"S","wait":true}`)
	if code != http.StatusOK || clean.State != jobq.StateDone || clean.Cached {
		t.Fatalf("clean solve after poison: %d %+v", code, clean)
	}
	if clean.Verified == nil || !*clean.Verified {
		t.Fatalf("clean solve not verified: %+v", clean)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
