// Command mgd runs the MG solver as a resident service: an HTTP/JSON
// API over the internal/jobq queue, with one process-global worker pool
// and buffer arena shared by every job, a content-addressed result
// cache, admission control and graceful drain.
//
//	mgd -addr :8750 -runners 2 -workers 8
//
// API:
//
//	POST /v1/solve        submit {"class":"A","impl":"sac",...};
//	                      202 + job id, 200 on a cache hit or "wait":true,
//	                      400 malformed, 429 + Retry-After when full,
//	                      503 while draining
//	GET  /v1/jobs/{id}    job status (any lifecycle state)
//	GET  /v1/results/{id} terminal result; 202 while still in flight
//	GET  /v1/stats        queue counters as JSON
//	GET  /metrics         Prometheus text: mgd_* queue series plus the
//	                      shared collector's per-kernel rows
//	GET  /healthz         liveness
//	GET  /readyz          readiness; 503 once draining begins
//
// SIGINT/SIGTERM starts a graceful shutdown: intake stops (readyz goes
// unready, new submissions get 503), admitted jobs run to completion
// within -drain-timeout, then stragglers are cancelled.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jobq"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	var (
		addr         = flag.String("addr", ":8750", "listen address")
		workers      = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		runners      = flag.Int("runners", 2, "jobs solved concurrently")
		capacity     = flag.Int("capacity", 64, "admission limit: queued+running jobs")
		cacheSize    = flag.Int("cache", 256, "result cache entries")
		prios        = flag.String("priorities", "", "tenant priorities, e.g. gold=10,batch=-5")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight jobs")
		chaosTenant  = flag.String("chaos-nan-tenant", "", "fault injection: poison this tenant's results with NaN (testing)")
	)
	flag.Parse()

	priorities, err := parsePriorities(*prios)
	if err != nil {
		log.Fatalf("mgd: -priorities: %v", err)
	}

	pool := sched.NewPersistent(*workers)
	arena := mempool.Shared()
	collector := metrics.NewCollector(pool.Workers())
	run := jobq.ObservedSolver(pool, arena, collector)
	if *chaosTenant != "" {
		run = poisonTenant(run, *chaosTenant)
	}
	q := jobq.New(jobq.Config{
		Capacity:     *capacity,
		Runners:      *runners,
		CacheEntries: *cacheSize,
		Priorities:   priorities,
		Run:          run,
	})

	s := &server{q: q, collector: collector, started: time.Now()}
	httpServer := &http.Server{Addr: *addr, Handler: s.routes()}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("mgd: draining (budget %s)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := q.Drain(ctx); err != nil {
			log.Printf("mgd: drain incomplete: %v", err)
		}
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		httpServer.Shutdown(shutdownCtx)
	}()

	log.Printf("mgd: serving on %s (workers=%d runners=%d capacity=%d cache=%d)",
		*addr, pool.Workers(), *runners, *capacity, *cacheSize)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mgd: %v", err)
	}
	q.Close()
	log.Printf("mgd: drained %d jobs, bye", q.Stats().Completed)
}

// parsePriorities parses "tenant=level,tenant=level".
func parsePriorities(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("%q is not tenant=level", part)
		}
		n, err := strconv.Atoi(level)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", part, err)
		}
		out[name] = n
	}
	return out, nil
}

// poisonTenant wraps a RunFunc with NaN fault injection for one tenant —
// the chaos hook behind the fault-injection tests: the queue must turn
// the poisoned norm into a failed job, never a cached success or a dead
// process.
func poisonTenant(run jobq.RunFunc, tenant string) jobq.RunFunc {
	return func(ctx context.Context, req jobq.Request) (jobq.Result, error) {
		res, err := run(ctx, req)
		if err == nil && req.Tenant == tenant {
			res.Rnm2 = math.NaN()
		}
		return res, err
	}
}

// server is the HTTP front end over the queue.
type server struct {
	q         *jobq.Queue
	collector *metrics.Collector
	started   time.Time
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.q.Stats().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	return mux
}

// writeJSON renders one response; jobq.Result marshals directly.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error any `json:"error"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, jobq.MaxRequestBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	req, err := jobq.ParseRequest(body)
	if err != nil {
		var re *jobq.RequestError
		if errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: re})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	tk, err := s.q.Submit(req)
	var full *jobq.FullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: full.Error()})
		return
	case errors.Is(err, jobq.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	if tk.Cached() {
		writeJSON(w, http.StatusOK, tk.Result())
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, tk.Result())
		return
	}
	// Wait mode: hold the connection until the job is terminal. A client
	// that disconnects releases its claim — the last waiter leaving
	// cancels the solve at its next iteration boundary.
	select {
	case <-tk.Done():
		writeJSON(w, http.StatusOK, tk.Result())
	case <-r.Context().Done():
		tk.Release()
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	res, ok := s.q.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.q.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	if !res.State.Terminal() {
		writeJSON(w, http.StatusAccepted, res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		jobq.Stats
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}{s.q.Stats(), time.Since(s.started).Seconds()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.q.WritePrometheus(w)
	s.collector.Snapshot().WritePrometheus(w, core.KernelCost)
}
