// Command mgd runs the MG solver as a resident service: an HTTP/JSON
// API over the internal/jobq queue, with one process-global worker pool
// and buffer arena shared by every job, a content-addressed result
// cache, admission control, graceful drain, and a request-scoped
// observability layer (internal/obs): 128-bit trace IDs, structured
// logs, per-stage latency histograms and an anomaly flight recorder.
//
//	mgd -addr :8750 -runners 2 -workers 8 -log-format json -trace mgd-trace.jsonl
//
// API:
//
//	POST /v1/solve        submit {"class":"A","impl":"sac",...};
//	                      202 + job id, 200 on a cache hit or "wait":true,
//	                      400 malformed, 429 + Retry-After when full,
//	                      503 while draining. X-Mg-Trace-Id in: adopt the
//	                      caller's trace; out: the id assigned to the job.
//	GET  /v1/jobs/{id}    job status (any lifecycle state)
//	GET  /v1/results/{id} terminal result with its stage breakdown;
//	                      202 while still in flight
//	GET  /v1/stats        queue counters as JSON, plus the bound address
//	                      and cumulative per-stage seconds
//	GET  /metrics         Prometheus text: mgd_* queue series, the
//	                      mgd_stage_seconds histograms, and the shared
//	                      collector's per-kernel rows
//	GET  /debug/flightrecorder   the flight recorder's JSON snapshot
//	GET  /healthz         liveness
//	GET  /readyz          readiness; 503 once draining begins
//
// SIGINT/SIGTERM starts a graceful shutdown: intake stops (readyz goes
// unready, new submissions get 503), admitted jobs run to completion
// within -drain-timeout, then stragglers are cancelled. SIGQUIT dumps
// the flight recorder (to -flight-dir when set) and keeps serving.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jobq"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	var (
		addr         = flag.String("addr", ":8750", "listen address (use :0 for an ephemeral port; the bound address is logged and served in /v1/stats)")
		workers      = flag.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS)")
		runners      = flag.Int("runners", 2, "jobs solved concurrently")
		capacity     = flag.Int("capacity", 64, "admission limit: queued+running jobs")
		cacheSize    = flag.Int("cache", 256, "result cache entries")
		prios        = flag.String("priorities", "", "tenant priorities, e.g. gold=10,batch=-5")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight jobs")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		tracePath    = flag.String("trace", "", "write the service's trace-tagged V-cycle event stream (JSON lines) to this file")
		flightSize   = flag.Int("flight-size", 256, "flight recorder ring slots (recent terminal jobs)")
		flightDir    = flag.String("flight-dir", "", "directory for anomaly-triggered flight recorder dumps (empty: HTTP snapshot only)")
		chaosTenant  = flag.String("chaos-nan-tenant", "", "fault injection: poison this tenant's results with NaN (testing)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgd:", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgd:", err)
		os.Exit(2)
	}
	priorities, err := parsePriorities(*prios)
	if err != nil {
		logger.Error("bad -priorities", "error", err)
		os.Exit(2)
	}

	var tracer *metrics.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			logger.Error("cannot create trace file", "path", *tracePath, "error", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = metrics.NewTracer(f)
		defer tracer.Close()
	}

	observer := obs.New(obs.Config{
		Log:         logger,
		FlightSlots: *flightSize,
		FlightDir:   *flightDir,
	})

	pool := sched.NewPersistent(*workers)
	arena := mempool.Shared()
	collector := metrics.NewCollector(pool.Workers())
	run := jobq.NewSolver(jobq.SolverConfig{
		Sched: pool, Mem: arena,
		Metrics: collector, Trace: tracer, Obs: observer,
	})
	if *chaosTenant != "" {
		run = poisonTenant(run, *chaosTenant)
	}
	q := jobq.New(jobq.Config{
		Capacity:     *capacity,
		Runners:      *runners,
		CacheEntries: *cacheSize,
		Priorities:   priorities,
		Run:          run,
		Obs:          observer,
		Trace:        tracer,
	})

	// Bind before serving so the actual address — the one that matters
	// with :0 — is known, logged, and visible in /v1/stats; operators
	// and tests stop parsing stdout for it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()

	s := &server{q: q, collector: collector, obs: observer, addr: bound, started: time.Now()}
	httpServer := &http.Server{Handler: s.routes()}

	go func() {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		for range quit {
			path, ok := observer.Recorder().Trigger(obs.ReasonSignal)
			logger.Info("SIGQUIT: flight recorder dump", "dumped", ok, "path", path)
		}
	}()

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		logger.Info("draining", "budget", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := q.Drain(ctx); err != nil {
			logger.Warn("drain incomplete", "error", err)
		}
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		httpServer.Shutdown(shutdownCtx)
	}()

	logger.Info("serving", "addr", bound,
		"workers", pool.Workers(), "runners", *runners,
		"capacity", *capacity, "cache", *cacheSize,
		"log_format", *logFormat, "flight_slots", *flightSize)
	if err := httpServer.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	}
	q.Close()
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			logger.Warn("trace stream error", "error", err)
		}
	}
	logger.Info("drained, bye", "completed", q.Stats().Completed)
}

// parsePriorities parses "tenant=level,tenant=level".
func parsePriorities(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("%q is not tenant=level", part)
		}
		n, err := strconv.Atoi(level)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", part, err)
		}
		out[name] = n
	}
	return out, nil
}

// poisonTenant wraps a RunFunc with NaN fault injection for one tenant —
// the chaos hook behind the fault-injection tests: the queue must turn
// the poisoned norm into a failed job, never a cached success or a dead
// process.
func poisonTenant(run jobq.RunFunc, tenant string) jobq.RunFunc {
	return func(ctx context.Context, req jobq.Request) (jobq.Result, error) {
		res, err := run(ctx, req)
		if err == nil && req.Tenant == tenant {
			res.Rnm2 = math.NaN()
		}
		return res, err
	}
}

// server is the HTTP front end over the queue.
type server struct {
	q         *jobq.Queue
	collector *metrics.Collector
	obs       *obs.Observer
	addr      string
	started   time.Time
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.q.Stats().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	return mux
}

// writeJSON renders one response; jobq.Result marshals directly.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error any `json:"error"`
}

// requestTrace resolves a request's trace identity: adopt a valid
// X-Mg-Trace-Id from the caller (an upstream proxy or a client
// correlating retries), mint a fresh 128-bit ID otherwise. The resolved
// ID is echoed on the response so the caller can grep logs and traces.
func requestTrace(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(id) {
		id = obs.NewTraceID().String()
	}
	w.Header().Set(obs.TraceHeader, id)
	return id
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	traceID := requestTrace(w, r)
	log := s.obs.Log().With("trace_id", traceID, "remote", r.RemoteAddr)
	body, err := io.ReadAll(io.LimitReader(r.Body, jobq.MaxRequestBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	req, err := jobq.ParseRequest(body)
	if err != nil {
		log.Warn("malformed solve request", "stage", obs.StageIngress, "error", err)
		var re *jobq.RequestError
		if errors.As(err, &re) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: re})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// A traceId in the JSON body (an SDK propagating context) wins over
	// the minted header ID; otherwise the header's ID becomes the job's.
	if req.TraceID == "" {
		req.TraceID = traceID
	} else {
		w.Header().Set(obs.TraceHeader, req.TraceID)
	}

	tk, err := s.q.Submit(req)
	var full *jobq.FullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: full.Error()})
		return
	case errors.Is(err, jobq.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	if tk.Cached() {
		writeJSON(w, http.StatusOK, tk.Result())
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, tk.Result())
		return
	}
	// Wait mode: hold the connection until the job is terminal. A client
	// that disconnects releases its claim — the last waiter leaving
	// cancels the solve at its next iteration boundary.
	select {
	case <-tk.Done():
		writeJSON(w, http.StatusOK, tk.Result())
	case <-r.Context().Done():
		log.Info("client disconnected while waiting",
			"job_id", tk.ID(), "tenant", req.Tenant, "stage", obs.StageRespond)
		tk.Release()
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	res, ok := s.q.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.q.Lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	if !res.State.Terminal() {
		writeJSON(w, http.StatusAccepted, res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		jobq.Stats
		Addr          string  `json:"addr"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		FlightDumps   uint64  `json:"flightDumps"`
	}{s.q.Stats(), s.addr, time.Since(s.started).Seconds(), s.obs.Recorder().Dumps()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.q.WritePrometheus(w)
	s.obs.Hist().WritePrometheus(w)
	s.collector.Snapshot().WritePrometheus(w, core.KernelCost)
}

// handleFlightRecorder serves the recorder's current snapshot — the
// on-demand postmortem view.
func (s *server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.obs.Recorder().WriteTo(w, obs.ReasonRequest)
}
