// Command mgbench regenerates every figure of the paper's evaluation
// section plus the ablations stated in the text:
//
//	mgbench -fig 11                  # single-processor performance table
//	mgbench -fig 12                  # own-relative speedups (simulated SMP)
//	mgbench -fig 13                  # speedups relative to serial F77
//	mgbench -fig codesize            # the >10x code-size claim
//	mgbench -fig all -classes S,W,A  # everything the paper reports
//
// Figures 12/13 use the SMP cost-model simulator (internal/smp) driven by
// real measured kernel profiles — see DESIGN.md §4 for why the paper's
// 12-processor SUN Enterprise 4000 is simulated rather than re-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/nas"
	"repro/internal/smp"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 11, 12, 13, mpi, codesize or all")
		classes = flag.String("classes", "S,W", "comma-separated size classes (paper: W,A)")
		repeats = flag.Int("repeats", 3, "repetitions per Fig. 11 measurement (best reported)")
		procs   = flag.Int("procs", 10, "simulated processor count for Figs. 12/13")
		repo    = flag.String("repo", ".", "repository root (for -fig codesize)")
	)
	flag.Parse()

	var classList []nas.Class
	for _, name := range strings.Split(*classes, ",") {
		c, err := nas.ClassByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		classList = append(classList, c)
	}
	machine := smp.Enterprise4000()
	machine.MaxProcs = *procs

	out := os.Stdout
	switch *fig {
	case "11":
		harness.RunFig11(out, classList, *repeats)
	case "12":
		harness.RunFig12(out, classList, machine)
	case "13":
		series := harness.RunFig12(out, classList, machine)
		harness.RunFig13(out, series, machine)
	case "mpi":
		for _, class := range classList {
			ranks := []int{1, 2, 4, 8}
			if class.N/2 < 8 {
				ranks = []int{1, 2, 4}
			}
			harness.RunMPIStats(out, class, ranks)
		}
	case "codesize":
		if _, err := harness.RunCodeSize(out, *repo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "all":
		harness.RunFig11(out, classList, *repeats)
		series := harness.RunFig12(out, classList, machine)
		harness.RunFig13(out, series, machine)
		for _, class := range classList {
			harness.RunMPIStats(out, class, []int{1, 2, 4, 8})
		}
		if _, err := harness.RunCodeSize(out, *repo); err != nil {
			fmt.Fprintln(os.Stderr, "codesize skipped:", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mgbench: unknown -fig", *fig)
		os.Exit(2)
	}
}
