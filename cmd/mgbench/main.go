// Command mgbench regenerates every figure of the paper's evaluation
// section plus the ablations stated in the text:
//
//	mgbench -fig 11                  # single-processor performance table
//	mgbench -fig 12                  # own-relative speedups (simulated SMP)
//	mgbench -fig 13                  # speedups relative to serial F77
//	mgbench -fig codesize            # the >10x code-size claim
//	mgbench -fig all -classes S,W,A  # everything the paper reports
//
// Figures 12/13 use the SMP cost-model simulator (internal/smp) driven by
// real measured kernel profiles — see DESIGN.md §4 for why the paper's
// 12-processor SUN Enterprise 4000 is simulated rather than re-run.
//
// Beyond the paper's figures, -fig tune calibrates the per-(kernel, level)
// schedule autotuner (internal/tune) and prints the chosen plans:
//
//	mgbench -fig tune -classes S -tuneplan plan.json   # calibrate and save
//	mgbench -fig 11 -tuneplan plan.json                # run under the plan
//
// The observability layer (internal/metrics) hooks in with two flags:
//
//	mgbench -fig 11 -metrics                 # per-(kernel, level) table after the run
//	mgbench -fig 11 -trace run.jsonl         # JSON-lines V-cycle event trace
//
// -metrics prints invocation counts, points, time, derived GFLOP/s and
// effective bandwidth per (kernel, grid level), plus the fraction of the
// solve the instrumented kernels account for. -trace streams level
// transitions, kernel spans, iteration markers, tuner plan decisions and
// solve summaries, one JSON object per line (schema: DESIGN.md §3.2).
//
// -fig health runs each class once under the convergence-health monitor
// (internal/health) and prints the verdict/rate/imbalance table — kept
// out of the timed figures so monitoring never perturbs them.
//
// -cpuprofile/-memprofile wrap the selected figure's measurements with the
// standard runtime/pprof collectors for kernel-level inspection.
//
// -fig dist compares the in-process channel transport against a real
// multi-process TCP run (cmd/mgrank), asserting NPB verification and
// bit-identical rnm2 on every rank:
//
//	go build -o mgrank ./cmd/mgrank
//	mgbench -fig dist -mgrank ./mgrank -classes S,W -ranks 4
//
// -fig comm is the distributed-observability experiment (FW-3c in
// EXPERIMENTS.md): the same multi-process run with per-rank tracing on,
// merged into a clock-aligned Perfetto timeline and a skew/overlap
// report, with the pairing and blocked-time-attribution gates enforced:
//
//	mgbench -fig comm -mgrank ./mgrank -classes S -ranks 4 -commout comm-artifacts
//
// Both distributed figures accept -overlap, which runs the ranks with
// the nonblocking overlapped halo exchange (mgrank -overlap); -fig comm
// additionally prints one `overlap efficiency: <x>` summary line per
// class, the number CI's overlap gate compares between the synchronous
// and overlapped runs.
//
// The performance regression lab lives under -fig perf: repeated-sample
// benchmark snapshots (internal/perfstat statistics over the
// internal/metrics per-kernel attribution) saved as versioned JSON
// (internal/perfdb), and statistically gated comparisons:
//
//	mgbench -fig perf -classes S,W                      # snapshot to BENCH_<gitsha>.json
//	mgbench -fig perf -classes S -snapshot a.json       # explicit output path
//	mgbench -fig perf -classes S -baseline a.json       # compare; exit 1 on regression
//	mgbench -fig perf -baseline a.json -threshold 0.25  # gate at 25% median slowdown
//
// A row regresses only when the Mann-Whitney U test rejects "same
// distribution" at -alpha AND the median moved by at least -threshold
// relative and 20µs absolute — see internal/perfstat for why both guards
// exist. The comparison table attributes an end-to-end delta to the
// (kernel, level) rows that moved; CI runs this against the checked-in
// BENCH_baseline.json on every push (see .github/workflows/ci.yml).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/perfdb"
	"repro/internal/perfstat"
	"repro/internal/smp"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "figure to regenerate: 11, 12, 13, mpi, dist, comm, codesize, tune, perf, health, service or all")
		classes     = flag.String("classes", "S,W", "comma-separated size classes (paper: W,A)")
		repeats     = flag.Int("repeats", 3, "repetitions per Fig. 11 measurement (best reported)")
		procs       = flag.Int("procs", 10, "simulated processor count for Figs. 12/13")
		repo        = flag.String("repo", ".", "repository root (for -fig codesize)")
		workers     = flag.Int("workers", 0, "worker count for -fig tune calibration and -fig health (0 = GOMAXPROCS)")
		maxSolves   = flag.Int("maxsolves", 50, "calibration solve budget per class for -fig tune")
		tunePlan    = flag.String("tuneplan", "", "autotuner plan file: -fig tune writes it, other figures run the SAC implementation under it")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the measurements to this file")
		showMetrics = flag.Bool("metrics", false, "collect per-(kernel, level) metrics in the SAC runs and print the table afterwards")
		traceFile   = flag.String("trace", "", "write a JSON-lines V-cycle event trace of the SAC runs to this file")
		snapshotOut = flag.String("snapshot", "", "-fig perf: write the benchmark snapshot here (default BENCH_<gitsha>.json)")
		baseline    = flag.String("baseline", "", "-fig perf: compare the fresh snapshot against this baseline and exit 1 on a significant regression")
		threshold   = flag.Float64("threshold", 0.25, "-fig perf: minimum relative median change that counts (0.25 = 25%; tighten on quiet dedicated hardware)")
		alpha       = flag.Float64("alpha", 0.01, "-fig perf: Mann-Whitney significance level of the regression test")
		samples     = flag.Int("samples", 10, "-fig perf: recorded solves per (implementation, class)")
		warmup      = flag.Int("warmup", 2, "-fig perf: discarded warm-up solves per (implementation, class)")
		mgrankBin   = flag.String("mgrank", "", "-fig dist/comm: path to a built cmd/mgrank binary")
		distRanks   = flag.Int("ranks", 4, "-fig dist/comm: number of mgrank processes")
		commOut     = flag.String("commout", "comm-artifacts", "-fig comm: directory for the per-rank traces, merged Perfetto timeline and comm report")
		distOverlap = flag.Bool("overlap", false, "-fig dist/comm: run the ranks with the nonblocking overlapped halo exchange (mgrank -overlap)")
		variant     = flag.String("variant", "", "force the SAC plane-kernel backend: scalar, buffered or simd (default: per-level autotuner choice)")
	)
	flag.Parse()

	if *variant != "" && !tune.ValidVariant(*variant) {
		fmt.Fprintf(os.Stderr, "mgbench: unknown -variant %q (want %s, %s or %s)\n",
			*variant, tune.VariantScalar, tune.VariantBuffered, tune.VariantSIMD)
		os.Exit(2)
	}
	if *variant != "" {
		prev := harness.SACEnv
		harness.SACEnv = func() *wl.Env {
			e := prev()
			e.Variant = *variant
			return e
		}
	}

	var classList []nas.Class
	for _, name := range strings.Split(*classes, ",") {
		c, err := nas.ClassByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		classList = append(classList, c)
	}
	machine := smp.Enterprise4000()
	machine.MaxProcs = *procs
	out := os.Stdout

	if *tunePlan != "" && *fig != "tune" {
		// Run the SAC implementation under a previously calibrated plan.
		tu := tune.New(1)
		if err := tu.LoadFile(*tunePlan); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		harness.SACEnv = func() *wl.Env {
			e := wl.Default()
			e.Tune = tu
			return e
		}
		fmt.Fprintf(out, "SAC environment: autotuned plan %s\n\n", *tunePlan)
	}

	// Observability: attach a collector and/or tracer to every SAC
	// environment the harness builds.
	var collector *metrics.Collector
	var tracer *metrics.Tracer
	if *showMetrics {
		collector = metrics.NewCollector(runtime.GOMAXPROCS(0))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		tracer = metrics.NewTracer(f)
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mgbench: trace:", err)
			}
			f.Close()
			fmt.Fprintf(out, "Trace: %d events written to %s\n", tracer.Events(), *traceFile)
		}()
		// Route tuner plan decisions into the trace.
		harness.TuneObserver = func(key tune.Key, plan tune.Plan) {
			tracer.Emit(metrics.Event{Ev: "plan", Kernel: key.Kernel, Level: key.Level,
				Plan: plan.String()})
		}
	}
	if collector != nil || tracer != nil {
		prev := harness.SACEnv
		harness.SACEnv = func() *wl.Env {
			e := prev()
			e.AttachMetrics(collector)
			e.AttachTrace(tracer)
			return e
		}
		defer func() {
			if collector != nil {
				collector.Snapshot().WriteReport(out, core.KernelCost)
			}
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mgbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is the live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mgbench:", err)
			}
		}()
	}

	switch *fig {
	case "11":
		harness.RunFig11(out, classList, *repeats)
	case "12":
		harness.RunFig12(out, classList, machine)
	case "13":
		series := harness.RunFig12(out, classList, machine)
		harness.RunFig13(out, series, machine)
	case "mpi":
		for _, class := range classList {
			ranks := []int{1, 2, 4, 8}
			if class.N/2 < 8 {
				ranks = []int{1, 2, 4}
			}
			harness.RunMPIStats(out, class, ranks)
		}
	case "dist":
		if *mgrankBin == "" {
			fmt.Fprintln(os.Stderr, "mgbench: -fig dist needs -mgrank with a built cmd/mgrank binary")
			os.Exit(2)
		}
		if err := harness.RunFigDist(out, *mgrankBin, classList, *distRanks, *distOverlap); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
	case "comm":
		if *mgrankBin == "" {
			fmt.Fprintln(os.Stderr, "mgbench: -fig comm needs -mgrank with a built cmd/mgrank binary")
			os.Exit(2)
		}
		for _, class := range classList {
			rep, err := harness.RunFigComm(out, *mgrankBin, class, *distRanks, *distOverlap, *commOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mgbench:", err)
				os.Exit(1)
			}
			// One greppable summary line per class — the CI overlap gate
			// compares this number between the sync and -overlap runs.
			fmt.Fprintf(out, "overlap efficiency: %.3f\n", rep.OverlapEfficiency)
		}
	case "codesize":
		if _, err := harness.RunCodeSize(out, *repo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "tune":
		if err := runTune(out, classList, *workers, *maxSolves, *tunePlan); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
	case "health":
		harness.RunHealth(out, classList, *workers)
	case "service":
		for _, class := range classList {
			if _, err := harness.RunService(out, class, harness.ServiceConfig{}); err != nil {
				fmt.Fprintln(os.Stderr, "mgbench:", err)
				os.Exit(1)
			}
		}
	case "perf":
		regressed, err := runPerf(out, classList, *repo, *snapshotOut, *baseline, *samples, *warmup, *alpha, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		if regressed {
			fmt.Fprintln(os.Stderr, "mgbench: performance regression against", *baseline)
			os.Exit(1)
		}
	case "all":
		harness.RunFig11(out, classList, *repeats)
		series := harness.RunFig12(out, classList, machine)
		harness.RunFig13(out, series, machine)
		for _, class := range classList {
			harness.RunMPIStats(out, class, []int{1, 2, 4, 8})
		}
		if _, err := harness.RunCodeSize(out, *repo); err != nil {
			fmt.Fprintln(os.Stderr, "codesize skipped:", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "mgbench: unknown -fig", *fig)
		os.Exit(2)
	}
}

// runPerf takes a statistical benchmark snapshot (harness.RunPerf),
// saves it (default: BENCH_<gitsha>.json in the repository root), and —
// when a baseline is given — prints the row-by-row comparison and
// reports whether any row regressed significantly.
func runPerf(out *os.File, classList []nas.Class, repoDir, snapshotOut, baseline string, samples, warmup int, alpha, threshold float64) (regressed bool, err error) {
	snap, err := harness.RunPerf(out, classList, harness.PerfConfig{
		Samples: samples, Warmup: warmup, RepoDir: repoDir,
	})
	if err != nil {
		return false, err
	}
	path := snapshotOut
	if path == "" {
		path = filepath.Join(repoDir, fmt.Sprintf("BENCH_%s.json", snap.Git.ShortSHA()))
	}
	if err := snap.Save(path); err != nil {
		return false, err
	}
	fmt.Fprintf(out, "snapshot saved to %s (%d rows)\n", path, len(snap.Rows))
	if baseline == "" {
		return false, nil
	}
	base, err := perfdb.Load(baseline)
	if err != nil {
		return false, err
	}
	cmp := perfdb.Compare(base, snap, perfstat.Thresholds{Alpha: alpha, MinRel: threshold})
	fmt.Fprintln(out)
	cmp.WriteTable(out)
	return cmp.HasRegression(), nil
}

// runTune calibrates one tuner per class and, when planPath is set, saves
// the last calibration and verifies the JSON profile round-trips.
func runTune(out *os.File, classList []nas.Class, workers, maxSolves int, planPath string) error {
	var tu *tune.Tuner
	for _, class := range classList {
		tu = harness.RunTune(out, class, workers, maxSolves)
	}
	if planPath == "" || tu == nil {
		return nil
	}
	if err := tu.SaveFile(planPath); err != nil {
		return err
	}
	back := tune.New(tu.Workers())
	if err := back.LoadFile(planPath); err != nil {
		return err
	}
	if !reflect.DeepEqual(back.Plans(), tu.Plans()) {
		return fmt.Errorf("plan %s did not round-trip through JSON", planPath)
	}
	fmt.Fprintf(out, "Plan saved to %s (%d entries, JSON round-trip verified)\n",
		planPath, len(tu.Plans()))
	return nil
}
