// Command mgload is the saturation load generator for the mgd daemon:
// concurrent HTTP clients submit a configurable mix of repeat traffic
// (cache hits) and unique problems (cold solves, distinguished by their
// zran3 seed) for a fixed duration, then report jobs/sec and the p50/p99
// latency of hits and misses separately.
//
//	mgd -addr :8750 &
//	mgload -url http://localhost:8750 -clients 8 -duration 10s -repeat 75
//
// The report prints as a table, and -json / -snapshot feed it into the
// performance lab: -snapshot writes a perfdb snapshot whose rows
// ("service/<class> cachehit@0" and "service/<class> coldsolve@0") plug
// into mgbench's baseline comparison machinery.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/jobq"
	"repro/internal/obs"
	"repro/internal/perfdb"
	"repro/internal/perfstat"
)

func main() {
	var (
		url       = flag.String("url", "http://localhost:8750", "mgd base URL")
		clients   = flag.Int("clients", 8, "concurrent submitters")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		class     = flag.String("class", "S", "NPB size class to submit")
		impl      = flag.String("impl", "sac", "implementation: sac, f77 or c")
		repeat    = flag.Int("repeat", 75, "percent of submissions that repeat the base problem (cache hits)")
		seed      = flag.Int64("seed", 1, "RNG seed for the traffic mix")
		jsonOut   = flag.String("json", "", "write the report as JSON to this file")
		snapOut   = flag.String("snapshot", "", "write a perfdb snapshot of the latency samples to this file")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgload:", err)
		os.Exit(2)
	}
	if *repeat < 0 || *repeat > 100 {
		logger.Error("-repeat must be 0..100", "repeat", *repeat)
		os.Exit(2)
	}

	if err := waitReady(*url, 10*time.Second); err != nil {
		logger.Error("daemon not ready", "url", *url, "error", err)
		os.Exit(1)
	}

	rep, hitSamples, missSamples := run(*url, *clients, *duration, *class, *impl, *repeat, *seed)
	rep.write(os.Stdout)

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			logger.Error("marshal report", "error", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			logger.Error("write report", "path", *jsonOut, "error", err)
			os.Exit(1)
		}
	}
	if *snapOut != "" {
		if err := saveSnapshot(*snapOut, *class, *clients, hitSamples, missSamples); err != nil {
			logger.Error("write snapshot", "path", *snapOut, "error", err)
			os.Exit(1)
		}
	}
	if rep.Failed > 0 {
		logger.Warn("load run saw failed submissions", "failed", rep.Failed)
		os.Exit(1)
	}
}

// waitReady polls /readyz until the daemon accepts work.
func waitReady(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s not ready: %v", url, err)
			}
			return fmt.Errorf("daemon at %s not ready", url)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// report is the saturation measurement mgload prints and exports.
type report struct {
	URL            string  `json:"url"`
	Class          string  `json:"class"`
	Impl           string  `json:"impl"`
	Clients        int     `json:"clients"`
	RepeatPercent  int     `json:"repeatPercent"`
	Seconds        float64 `json:"seconds"`
	Jobs           int     `json:"jobs"`
	JobsPerSec     float64 `json:"jobsPerSec"`
	Hits           int     `json:"hits"`
	Misses         int     `json:"misses"`
	Rejected       int     `json:"rejected"`
	Retries        int     `json:"retries"`
	Failed         int     `json:"failed"`
	HitP50Micros   float64 `json:"hitP50Micros"`
	HitP99Micros   float64 `json:"hitP99Micros"`
	MissP50Millis  float64 `json:"missP50Millis"`
	MissP99Millis  float64 `json:"missP99Millis"`
	HitSpeedupP50  float64 `json:"hitSpeedupP50"`
	RetryAfterSecs int     `json:"retryAfterSeconds,omitempty"`
}

func (r report) write(w *os.File) {
	fmt.Fprintf(w, "--- mgload: %s class %s/%s, %d clients, %d%% repeat, %.1f s ---\n",
		r.URL, r.Class, r.Impl, r.Clients, r.RepeatPercent, r.Seconds)
	fmt.Fprintf(w, "%-18s %10.1f jobs/s  (%d jobs: %d hits, %d misses, %d rejected/%d retried, %d failed)\n",
		"throughput", r.JobsPerSec, r.Jobs, r.Hits, r.Misses, r.Rejected, r.Retries, r.Failed)
	fmt.Fprintf(w, "%-18s %10.1f us   p99 %10.1f us\n", "cache-hit latency", r.HitP50Micros, r.HitP99Micros)
	fmt.Fprintf(w, "%-18s %10.2f ms   p99 %10.2f ms\n", "cold-solve latency", r.MissP50Millis, r.MissP99Millis)
	fmt.Fprintf(w, "%-18s %10.0fx  (cold p50 / hit p50)\n", "hit speedup", r.HitSpeedupP50)
}

// run drives the load and collects per-response latency, classified by
// the daemon's Cached flag.
func run(url string, clients int, duration time.Duration, class, impl string, repeat int, seed int64) (report, []float64, []float64) {
	type sample struct {
		seconds float64
		cached  bool
	}
	var (
		mu       sync.Mutex
		samples  []sample
		rejected int
		retries  int
		failed   int
		retryMax int
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	var seedCounter int64 = 1 << 20 // unique-problem seeds start here
	var seedMu sync.Mutex

	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			client := &http.Client{Timeout: 5 * time.Minute}
			for time.Now().Before(deadline) {
				req := jobq.Request{Class: class, Impl: impl, Wait: true, Tenant: "mgload"}
				if rng.Intn(100) >= repeat {
					seedMu.Lock()
					seedCounter++
					req.Seed = uint64(seedCounter)
					seedMu.Unlock()
				}
				body, _ := json.Marshal(req)
				start := time.Now()
				resp, err := client.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				elapsed := time.Since(start).Seconds()
				var res jobq.Result
				decodeErr := json.NewDecoder(resp.Body).Decode(&res)
				retry := resp.Header.Get("Retry-After")
				resp.Body.Close()
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
					retries++
					if n, err := strconv.Atoi(retry); err == nil && n > retryMax {
						retryMax = n
					}
					mu.Unlock()
					// Honor the daemon's backoff, capped so a long estimate
					// does not idle the generator past the deadline, and
					// jittered (equal jitter: half fixed, half random) so the
					// rejected clients do not re-submit in lockstep and hammer
					// the queue with a synchronized retry wave.
					d := time.Second
					if n, err := strconv.Atoi(retry); err == nil && n >= 1 {
						d = time.Duration(n) * time.Second
					}
					if d > 2*time.Second {
						d = 2 * time.Second
					}
					d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
					time.Sleep(d)
					continue
				case resp.StatusCode != http.StatusOK || decodeErr != nil || res.State != jobq.StateDone:
					failed++
				default:
					samples = append(samples, sample{seconds: elapsed, cached: res.Cached})
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if d := duration.Seconds(); elapsed < d {
		elapsed = d
	}

	var hits, misses []float64
	for _, s := range samples {
		if s.cached {
			hits = append(hits, s.seconds)
		} else {
			misses = append(misses, s.seconds)
		}
	}
	rep := report{
		URL: url, Class: class, Impl: impl, Clients: clients,
		RepeatPercent: repeat, Seconds: elapsed,
		Jobs: len(samples), JobsPerSec: float64(len(samples)) / elapsed,
		Hits: len(hits), Misses: len(misses),
		Rejected: rejected, Retries: retries, Failed: failed,
		HitP50Micros:   perfstat.Quantile(hits, 0.5) * 1e6,
		HitP99Micros:   perfstat.Quantile(hits, 0.99) * 1e6,
		MissP50Millis:  perfstat.Quantile(misses, 0.5) * 1e3,
		MissP99Millis:  perfstat.Quantile(misses, 0.99) * 1e3,
		RetryAfterSecs: retryMax,
	}
	if p50 := perfstat.Quantile(hits, 0.5); p50 > 0 {
		rep.HitSpeedupP50 = perfstat.Quantile(misses, 0.5) / p50
	}
	return rep, hits, misses
}

// saveSnapshot exports the latency samples as a perfdb snapshot so the
// service rows ride the same baseline/comparison tooling as the kernel
// benchmarks.
func saveSnapshot(path, class string, clients int, hits, misses []float64) error {
	snap := &perfdb.Snapshot{
		Schema:  perfdb.SchemaVersion,
		Created: time.Now().Format(time.RFC3339),
		Host:    perfdb.CollectHost(),
		Git:     perfdb.CollectGit("."),
		Config:  perfdb.Config{Samples: len(hits) + len(misses), Workers: clients},
	}
	if len(hits) > 0 {
		snap.Rows = append(snap.Rows, perfdb.NewRow(
			perfdb.Key{Impl: "service", Class: class, Kernel: "cachehit", Level: 0}, hits))
	}
	if len(misses) > 0 {
		snap.Rows = append(snap.Rows, perfdb.NewRow(
			perfdb.Key{Impl: "service", Class: class, Kernel: "coldsolve", Level: 0}, misses))
	}
	return snap.Save(path)
}
