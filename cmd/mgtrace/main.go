// Command mgtrace analyses the JSON-lines V-cycle traces that cmd/mg,
// cmd/mgbench and the mgmpi solver write (-trace run.jsonl; schema:
// DESIGN.md §3.2):
//
//	mgtrace run.jsonl                     # per-(kernel, level) span summary
//	mgtrace -json run.jsonl               # the same summary as one JSON object
//	mgtrace -perfetto out.json run.jsonl  # Chrome trace-event / Perfetto JSON
//	mgtrace rank0.jsonl rank1.jsonl       # merge multiple (rank-tagged) traces
//	mgtrace -commreport rank*.jsonl       # cross-rank skew/overlap report
//
// The text summary aggregates kernel spans per (rank, kernel, level) with
// the critical path (the slowest rank's span total) and rank/worker
// imbalance ratios. -perfetto converts the stream to the Chrome
// trace-event format: one process per rank, with a solve track, one track
// per grid level and one per scheduler worker, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Multiple input files are
// concatenated before analysis, so per-rank trace files from an mgmpi run
// merge into a single timeline.
//
// Distributed traces (mgrank -trace, one file per rank) carry pairable
// send/recv events. -commreport joins both sides of every exchange,
// estimates per-rank clock offsets from the symmetric exchange
// midpoints, and reports per-(rank, level) compute-vs-blocked time, the
// straggler rank per iteration, and the overlap efficiency (DESIGN.md
// §3.5); it exits non-zero if any send/recv pair is unmatched.
// -perfetto applies the same offsets to a multi-rank trace, rendering
// one clock-aligned timeline with flow arrows between the two halves of
// every exchange. Input files are read tolerantly: a torn trailing line
// (a rank killed mid-write) is skipped with a warning, but an empty
// input or corruption mid-file is a hard error.
//
// Service traces (mgd -trace) interleave many jobs on one stream; their
// events carry trace/job tags. The summary then also aggregates the
// request stages (ingress, queue, dedup, solve, respond) and counts the
// traced jobs, and -perfetto gives each traced job its own track block —
// stage spans on the job's base track, its kernel spans on per-level
// tracks beneath it — so one request reads as a single connected span
// tree from ingress to respond. Filter by the trace arg in Perfetto to
// follow one request end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
)

func main() {
	var (
		perfetto   = flag.String("perfetto", "", "write Chrome trace-event / Perfetto JSON to this file ('-' for stdout)")
		jsonOut    = flag.Bool("json", false, "print the summary (or -commreport) as a single JSON object instead of text")
		commreport = flag.Bool("commreport", false, "cross-rank comm analysis: pair send/recv events, estimate clock offsets, report skew/overlap")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mgtrace [flags] trace.jsonl [more.jsonl ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	events, err := readTraces(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgtrace:", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "mgtrace: no events in input")
		os.Exit(1)
	}

	if *perfetto != "" {
		if err := writePerfetto(*perfetto, events); err != nil {
			fmt.Fprintln(os.Stderr, "mgtrace:", err)
			os.Exit(1)
		}
		if *perfetto != "-" {
			fmt.Printf("%d events -> %s (open in ui.perfetto.dev or chrome://tracing)\n",
				len(events), *perfetto)
		}
		return
	}

	if *commreport {
		rep := metrics.BuildCommReport(events)
		if *jsonOut {
			if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "mgtrace:", err)
				os.Exit(1)
			}
		} else {
			rep.WriteText(os.Stdout)
		}
		if unmatched := rep.UnmatchedSends + rep.UnmatchedRecvs; unmatched > 0 {
			fmt.Fprintf(os.Stderr, "mgtrace: %d unmatched send/recv pair(s) — trace incomplete or torn\n", unmatched)
			os.Exit(1)
		}
		return
	}

	sum := metrics.Summarize(events)
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(sum); err != nil {
			fmt.Fprintln(os.Stderr, "mgtrace:", err)
			os.Exit(1)
		}
		return
	}
	sum.WriteText(os.Stdout)
}

// readTraces reads and concatenates the JSON-lines event streams, in
// argument order (rank tags, not file order, distinguish ranks). Files
// are read tolerantly: a torn trailing line — the signature of a rank
// killed mid-write — is skipped with a warning on stderr, but a file
// with no events at all, or valid data after a malformed line, is an
// error.
func readTraces(paths []string) ([]metrics.Event, error) {
	var events []metrics.Event
	for _, path := range paths {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		evs, torn, err := metrics.ReadEventsTolerant(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if torn > 0 {
			fmt.Fprintf(os.Stderr, "mgtrace: warning: %s: skipped %d torn trailing line(s)\n", path, torn)
		}
		if len(evs) == 0 {
			return nil, fmt.Errorf("%s: no events in input", path)
		}
		events = append(events, evs...)
	}
	return events, nil
}

// writePerfetto converts the events to Chrome trace-event JSON, validates
// the result against the schema the loaders expect, and writes it. A
// multi-rank trace carrying comm events is clock-aligned first: every
// rank's events shift by its estimated offset, and matched send/recv
// pairs get cross-process flow arrows.
func writePerfetto(path string, events []metrics.Event) error {
	var offsets map[int]int64
	for _, e := range events {
		if e.Ev == "send" || e.Ev == "recv" || e.Ev == "hello" {
			offsets = metrics.OffsetMap(metrics.EstimateOffsets(events))
			break
		}
	}
	ct := metrics.ChromeTraceAligned(events, offsets)
	if err := ct.Validate(); err != nil {
		return fmt.Errorf("conversion produced invalid trace: %w", err)
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}
