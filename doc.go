// Package repro reproduces Clemens Grelck, "Implementing the NAS Benchmark
// MG in SAC" (IPPS 2002) as a Go library: a SAC-style functional array
// programming system (WITH-loops, an APL-style array library, implicit
// multithreading, reference-counted memory management) together with the
// NAS benchmark MG implemented three ways — the paper's generic high-level
// program, the Fortran-77 reference port, and the C/OpenMP port — plus the
// harness that regenerates every figure of the paper's evaluation.
//
// Import the public API from repro/sacmg. The root package exists to carry
// the module documentation and the per-figure benchmarks (bench_test.go);
// see README.md for the map of the repository and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro
