// Per-figure benchmarks: every table/figure of the paper's evaluation has
// a testing.B counterpart here (plus the ablations stated in the text).
// cmd/mgbench produces the full formatted figures; these benchmarks are
// the `go test -bench` entry points that regenerate the underlying
// measurements.
//
// Classes S and W run by default; class A (256³, ~4 s per measurement) is
// exercised by cmd/mgbench and the non-short tests instead of the
// benchmark loop.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/cport"
	"repro/internal/f77"
	"repro/internal/harness"
	"repro/internal/health"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/periodic"
	"repro/internal/sched"
	"repro/internal/smp"
	"repro/internal/tune"
	wl "repro/internal/withloop"
)

// --- Figure 11: single-processor performance ------------------------------------

func benchF77(b *testing.B, class nas.Class) {
	s := f77.New(class)
	s.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalResid()
		for it := 0; it < class.Iter; it++ {
			s.MG3P()
			s.EvalResid()
		}
	}
}

func benchSAC(b *testing.B, class nas.Class) {
	env := wl.Default()
	defer env.Close()
	bench := core.NewBenchmark(class, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func benchCPort(b *testing.B, class nas.Class) {
	s := cport.New(class)
	s.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalResid()
		for it := 0; it < class.Iter; it++ {
			s.MG3P()
			s.EvalResid()
		}
	}
}

func BenchmarkFig11_F77_ClassS(b *testing.B) { benchF77(b, nas.ClassS) }
func BenchmarkFig11_SAC_ClassS(b *testing.B) { benchSAC(b, nas.ClassS) }
func BenchmarkFig11_C_ClassS(b *testing.B)   { benchCPort(b, nas.ClassS) }
func BenchmarkFig11_F77_ClassW(b *testing.B) { benchF77(b, nas.ClassW) }
func BenchmarkFig11_SAC_ClassW(b *testing.B) { benchSAC(b, nas.ClassW) }
func BenchmarkFig11_C_ClassW(b *testing.B)   { benchCPort(b, nas.ClassW) }

// --- Figures 12/13: profile collection + SMP simulation ---------------------------

// BenchmarkFig12_ProfileAndSimulate measures the full Figure-12 pipeline:
// probe-instrumented benchmark runs for all three implementations plus the
// speedup prediction on the simulated Enterprise 4000.
func BenchmarkFig12_ProfileAndSimulate(b *testing.B) {
	m := smp.Enterprise4000()
	for i := 0; i < b.N; i++ {
		harness.RunFig12(io.Discard, []nas.Class{nas.ClassS}, m)
	}
}

// BenchmarkFig13_Rebase measures Figure 13's rebasing on top of a fixed
// Figure-12 series (the simulation itself, without remeasuring profiles).
func BenchmarkFig13_Rebase(b *testing.B) {
	m := smp.Enterprise4000()
	series := harness.RunFig12(io.Discard, []nas.Class{nas.ClassS}, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunFig13(io.Discard, series, m)
	}
}

// BenchmarkSMP_Predict isolates one cost-model evaluation.
func BenchmarkSMP_Predict(b *testing.B) {
	profiles := harness.CollectProfiles(nas.ClassS)
	m := smp.Enterprise4000()
	prof := profiles["SAC"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(prof, smp.SAC, 10)
	}
}

// --- T-stencil ablation: what each stencil optimization buys ----------------------
// (The per-kernel microbenchmarks live in internal/stencil; this is the
// whole-benchmark view: the modeled compiler levels O0–O3.)

func benchOptLevel(b *testing.B, opt wl.OptLevel) {
	env := wl.Default()
	defer env.Close()
	env.Opt = opt
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func BenchmarkAblation_OptO0_ClassS(b *testing.B) { benchOptLevel(b, wl.O0) }
func BenchmarkAblation_OptO1_ClassS(b *testing.B) { benchOptLevel(b, wl.O1) }
func BenchmarkAblation_OptO2_ClassS(b *testing.B) { benchOptLevel(b, wl.O2) }
func BenchmarkAblation_OptO3_ClassS(b *testing.B) { benchOptLevel(b, wl.O3) }

// --- T-memmgmt ablation: SAC's memory manager on/off ------------------------------

func benchMemPool(b *testing.B, enabled bool) {
	env := wl.Default()
	defer env.Close()
	env.Pool = mempool.New(enabled)
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func BenchmarkAblation_MemPoolOn_ClassS(b *testing.B)  { benchMemPool(b, true) }
func BenchmarkAblation_MemPoolOff_ClassS(b *testing.B) { benchMemPool(b, false) }

// --- scheduling-policy ablation ----------------------------------------------------

func benchPolicy(b *testing.B, policy sched.Policy) {
	env := wl.Parallel(4)
	defer env.Close()
	env.ForOpt.Policy = policy
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func BenchmarkAblation_SchedStaticBlock(b *testing.B)  { benchPolicy(b, sched.StaticBlock) }
func BenchmarkAblation_SchedStaticCyclic(b *testing.B) { benchPolicy(b, sched.StaticCyclic) }
func BenchmarkAblation_SchedDynamic(b *testing.B)      { benchPolicy(b, sched.Dynamic) }
func BenchmarkAblation_SchedGuided(b *testing.B)       { benchPolicy(b, sched.Guided) }

// --- future-work ablation: extended borders vs direct periodic relaxation ---------
// (paper §7: "a direct implementation of relaxation with periodic boundary
// conditions that makes artificial boundary elements obsolete")

func BenchmarkFutureWork_ExtendedBorders_ClassW(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	bench := core.NewBenchmark(nas.ClassW, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func BenchmarkFutureWork_DirectPeriodic_ClassW(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	bench := periodic.NewBenchmark(nas.ClassW, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

// --- sequential-threshold ablation --------------------------------------------------
// SAC executes WITH-loops over small index spaces sequentially (the paper
// discusses this policy for the coarse V-cycle grids). The sweep shows the
// cost of turning the policy off (fork/join on every tiny coarse-grid
// loop) or overdoing it (serializing the finest grids too).

func benchSeqThreshold(b *testing.B, threshold int) {
	env := wl.Parallel(4)
	defer env.Close()
	env.SeqThreshold = threshold
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

func BenchmarkAblation_SeqThreshold0(b *testing.B)    { benchSeqThreshold(b, 0) }
func BenchmarkAblation_SeqThreshold4096(b *testing.B) { benchSeqThreshold(b, 4096) }
func BenchmarkAblation_SeqThresholdHuge(b *testing.B) { benchSeqThreshold(b, 1<<30) }

// --- tentpole benchmarks: tiled, norm-fused kernels + autotuned plans --------------

// BenchmarkSACResidNorm compares the fused final-residual evaluation (the
// norms accumulate inside the residual traversal — one grid read) against
// the separate resid-then-norm two-pass reference, on a converged solution
// grid. Both produce bit-identical norms.
func BenchmarkSACResidNorm(b *testing.B) {
	for _, class := range []nas.Class{nas.ClassS, nas.ClassW} {
		env := wl.Default()
		bench := core.NewBenchmark(class, env)
		bench.Reset()
		bench.Solve() // the grids the final residual is evaluated on
		s := bench.Solver
		b.Run(fmt.Sprintf("fused_class%c", class.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.ResidNorm(bench.V(), bench.U(), class.N)
			}
		})
		b.Run(fmt.Sprintf("separate_class%c", class.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.ResidNormSeparate(bench.V(), bench.U(), class.N)
			}
		})
		env.Close()
	}
}

// BenchmarkSACTiled sweeps the j/k cache-tile edge of the fused kernels
// over the whole benchmark (tile 0 = untiled full-plane traversal).
func BenchmarkSACTiled(b *testing.B) {
	for _, class := range []nas.Class{nas.ClassS, nas.ClassW} {
		for _, tile := range []int{0, 8, 16, 32} {
			b.Run(fmt.Sprintf("tile%d_class%c", tile, class.Name), func(b *testing.B) {
				env := wl.Default()
				defer env.Close()
				env.Tile = tile
				bench := core.NewBenchmark(class, env)
				bench.Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.Solve()
				}
			})
		}
	}
}

// BenchmarkSACVariant sweeps the plane-kernel inner-loop backends over
// the whole benchmark: scalar (tiled loops), buffered (line-buffer row
// memoisation) and simd (AVX2 fills and combines where available). All
// three produce bit-identical results (TestBufferedBitIdentical); this
// measures what the equivalence buys.
func BenchmarkSACVariant(b *testing.B) {
	for _, class := range []nas.Class{nas.ClassS, nas.ClassW} {
		for _, variant := range []string{tune.VariantScalar, tune.VariantBuffered, tune.VariantSIMD} {
			b.Run(fmt.Sprintf("%s_class%c", variant, class.Name), func(b *testing.B) {
				env := wl.Default()
				defer env.Close()
				env.Variant = variant
				bench := core.NewBenchmark(class, env)
				bench.Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.Solve()
				}
			})
		}
	}
}

// BenchmarkSACTuned compares the static default schedule against a
// calibrated per-(kernel, level) plan. Calibration runs before the timer.
func BenchmarkSACTuned(b *testing.B) {
	for _, class := range []nas.Class{nas.ClassS, nas.ClassW} {
		b.Run(fmt.Sprintf("default_class%c", class.Name), func(b *testing.B) {
			env := wl.Default()
			defer env.Close()
			bench := core.NewBenchmark(class, env)
			bench.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.Solve()
			}
		})
		b.Run(fmt.Sprintf("tuned_class%c", class.Name), func(b *testing.B) {
			env := wl.Default()
			defer env.Close()
			env.Tune = tune.New(env.Workers())
			bench := core.NewBenchmark(class, env)
			bench.Reset()
			bench.Solve() // first calibration pass touches every key
			for !env.Tune.Settled() {
				bench.Solve()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.Solve()
			}
		})
	}
}

// --- Observability overhead guard --------------------------------------------------

// BenchmarkMetricsDisabled is the baseline class-S solve with no collector
// or tracer attached — the default configuration every other benchmark in
// this file runs in. Compare against BenchmarkMetricsEnabled to bound the
// cost of the metrics layer; the disabled path itself is asserted to be
// allocation-free in internal/metrics (TestMetricsDisabledZeroAlloc).
func BenchmarkMetricsDisabled(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}

// BenchmarkMetricsEnabled runs the same solve with a live collector and a
// tracer writing to io.Discard — the full observability cost.
func BenchmarkMetricsEnabled(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	env.AttachMetrics(metrics.NewCollector(env.Workers()))
	env.Trace = metrics.NewTracer(io.Discard)
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
	b.StopTimer()
	if err := env.Trace.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceJobView runs the class-S solve emitting through a
// ForJob tracer view (the daemon's per-request configuration: every
// kernel span trace/job-tagged) writing to io.Discard. Compare against
// BenchmarkMetricsEnabled to bound the cost of the tags themselves, and
// against BenchmarkMetricsDisabled for the full tracing overhead; the
// disabled view is asserted allocation-free in internal/metrics
// (TestMetricsDisabledZeroAlloc covers the nil ForJob path).
func BenchmarkTraceJobView(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	tr := metrics.NewTracer(io.Discard)
	env.Trace = tr.ForJob("00112233445566778899aabbccddeeff", "deadbeef00000001")
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
	b.StopTimer()
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHealthEnabled runs the class-S solve with only the
// convergence-health monitor attached: the residual fold, the strided
// NaN guards and the per-iteration bookkeeping. Compare against
// BenchmarkMetricsDisabled to bound the monitor's overhead; a nil
// monitor is the disabled baseline and adds nothing (asserted
// allocation-free in internal/health).
func BenchmarkHealthEnabled(b *testing.B) {
	env := wl.Default()
	defer env.Close()
	env.Health = health.New(health.Config{})
	bench := core.NewBenchmark(nas.ClassS, env)
	bench.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Solve()
	}
}
