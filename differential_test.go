package repro

import (
	"math"
	"testing"

	"repro/internal/nas"
	"repro/sacmg"
)

// sacIterNorms hand-rolls the benchmark iteration on the SAC solver so the
// residual norm is visible after every V-cycle, not only at the end:
// u = 0; per iteration r = v − A·u, u += VCycle(r); norm after each update,
// plus the iteration-0 norm of the initial residual (u = 0). The arithmetic
// is identical to Benchmark.Run — residSubtract, VCycle and Add are the
// exact statements MGrid executes in its unfolded form, and the folded form
// is bit-identical to it (asserted by the core equivalence tests).
func sacIterNorms(t *testing.T, class sacmg.Class, workers int, variant string) []float64 {
	t.Helper()
	env := sacmg.NewParallelEnv(workers)
	env.Variant = variant
	defer env.Close()
	s := sacmg.NewSolver(env)
	s.Smoother = class.SmootherCoeffs()

	v := env.NewArray(class.ExtShape(class.LT()))
	defer env.Release(v)
	nas.Zran3(v, class.N)
	u := sacmg.GenarrayVal(env, v.Shape(), 0.0)
	defer func() { env.Release(u) }()

	norms := make([]float64, 0, class.Iter+1)
	record := func() {
		rnm2, _ := s.ResidNorm(v, u, class.N)
		norms = append(norms, rnm2)
	}
	record() // iteration 0: residual of the zero guess
	for it := 0; it < class.Iter; it++ {
		r := s.Resid(u)
		rv := sacmg.Sub(env, v, r)
		env.Release(r)
		z := s.VCycle(rv)
		env.Release(rv)
		u2 := sacmg.Add(env, u, z)
		env.Release(z)
		env.Release(u)
		u = u2
		record()
	}
	return norms
}

// mpiIterNorms collects the per-iteration norms of the message-passing
// solver via its IterNorms hook (iterations 0..Iter inclusive).
func mpiIterNorms(t *testing.T, class sacmg.Class, ranks int) []float64 {
	t.Helper()
	s := sacmg.NewMPISolver(class, ranks)
	norms := make([]float64, class.Iter+1)
	seen := make([]bool, class.Iter+1)
	s.IterNorms = func(iter int, rnm2, _ float64) {
		norms[iter] = rnm2
		seen[iter] = true
	}
	s.Run()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("IterNorms never reported iteration %d", i)
		}
	}
	return norms
}

// TestDifferentialIterNorms is the differential sweep: the SMP solver and
// the message-passing solver each produce a per-iteration rnm2 sequence
// that is bit-identical for every worker/rank count (the determinism
// contract of both runtimes), and the two backends agree on every
// iteration to the cross-implementation tolerance (their grids match to
// ~1e-10 relative; see the integration test).
func TestDifferentialIterNorms(t *testing.T) {
	classes := []sacmg.Class{sacmg.ClassS}
	if !testing.Short() {
		classes = append(classes, sacmg.ClassW)
	}
	for _, class := range classes {
		sacRef := sacIterNorms(t, class, 1, "scalar")
		if len(sacRef) != class.Iter+1 {
			t.Fatalf("class %c: got %d SAC norms, want %d", class.Name, len(sacRef), class.Iter+1)
		}
		for _, workers := range []int{2, 4} {
			got := sacIterNorms(t, class, workers, "scalar")
			for i := range sacRef {
				if got[i] != sacRef[i] {
					t.Fatalf("class %c: SAC %d workers, iter %d: rnm2 = %.17e, 1 worker %.17e",
						class.Name, workers, i, got[i], sacRef[i])
				}
			}
		}

		// Kernel variants: the buffered and simd backends must reproduce
		// the scalar per-iteration norm sequence bit-for-bit (the variant
		// bit-identity contract, here checked through the whole public
		// solver stack rather than core's unit tests).
		for _, variant := range []string{"buffered", "simd"} {
			for _, workers := range []int{1, 4} {
				got := sacIterNorms(t, class, workers, variant)
				for i := range sacRef {
					if got[i] != sacRef[i] {
						t.Fatalf("class %c: SAC %s %d workers, iter %d: rnm2 = %.17e, scalar %.17e",
							class.Name, variant, workers, i, got[i], sacRef[i])
					}
				}
			}
		}

		mpiRef := mpiIterNorms(t, class, 1)
		for _, ranks := range []int{2, 4} {
			got := mpiIterNorms(t, class, ranks)
			for i := range mpiRef {
				if got[i] != mpiRef[i] {
					t.Fatalf("class %c: mgmpi %d ranks, iter %d: rnm2 = %.17e, 1 rank %.17e",
						class.Name, ranks, i, got[i], mpiRef[i])
				}
			}
		}

		// Cross-backend: the grids of the two implementations differ at
		// ~1e-10 relative (different evaluation order inside the fused
		// kernels), so the norms can only agree to a tolerance — and near
		// convergence (class W drives rnm2 to ~1e-18 while u and v stay
		// ~1e-4) catastrophic cancellation in r = v − A·u amplifies that
		// grid difference without bound, so late iterations are compared
		// against the absolute size of the residual entries instead.
		for i := range sacRef {
			diff := math.Abs(sacRef[i] - mpiRef[i])
			rel := diff / math.Max(sacRef[i], mpiRef[i])
			if rel > 1e-6 && diff > 1e-13 {
				t.Fatalf("class %c: iter %d: SAC rnm2 = %.17e vs mgmpi %.17e (rel %.2e)",
					class.Name, i, sacRef[i], mpiRef[i], rel)
			}
		}

		// Both backends' final norms pass the official verification.
		for name, rnm2 := range map[string]float64{"sac": sacRef[class.Iter], "mgmpi": mpiRef[class.Iter]} {
			if verified, ok := class.Verify(rnm2); !ok || !verified {
				t.Fatalf("class %c: %s final rnm2 = %.17e did not verify", class.Name, name, rnm2)
			}
		}
	}
}
