// End-to-end trace-analysis test: one instrumented 2-worker solve feeds
// both exposition paths — the metrics collector and the JSON-lines trace
// analysed by cmd/mgtrace's library (metrics.Summarize /
// metrics.ChromeTraceFrom) — and the two views must agree: the trace's
// solve span is the very measurement the collector's "solve" row holds,
// the fused-kernel rows nest inside the region spans which nest inside
// the solve, and the Perfetto conversion is schema-valid.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/nas"
	wl "repro/internal/withloop"
)

// tracedSolve runs one fully instrumented solve (collector + tracer +
// health monitor, 2 workers) and returns both views.
func tracedSolve(t *testing.T, class nas.Class) (metrics.Snapshot, []metrics.Event, *health.Monitor) {
	t.Helper()
	var buf bytes.Buffer
	env := wl.Parallel(2)
	defer env.Close()
	collector := metrics.NewCollector(env.Workers())
	tracer := metrics.NewTracer(&buf)
	monitor := health.New(health.Config{})
	env.AttachMetrics(collector)
	env.AttachTrace(tracer)
	env.Health = monitor

	b := core.NewBenchmark(class, env)
	b.Reset()
	rnm2, _ := b.Solve()
	if verified, ok := class.Verify(rnm2); !ok || !verified {
		t.Fatalf("instrumented class-%c solve did not verify: rnm2 = %.13e",
			class.Name, rnm2)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := metrics.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return collector.Snapshot(), events, monitor
}

func TestTraceAgreesWithMetrics(t *testing.T) {
	class := nas.ClassW
	if testing.Short() {
		class = nas.ClassS
	}
	snap, events, monitor := tracedSolve(t, class)
	sum := metrics.Summarize(events)

	// The solve span in the trace and the "solve" row in the collector
	// are the same time.Since call (core.observedSolve), so they agree
	// exactly — the strongest form of "the views describe one run".
	var solveRow int64
	for _, k := range snap.Kernels {
		if k.Kernel == metrics.TotalKernel {
			solveRow = int64(k.Nanos)
		}
	}
	if solveRow == 0 || sum.SolveNanos != solveRow {
		t.Fatalf("trace solve span %d ns, metrics solve row %d ns", sum.SolveNanos, solveRow)
	}
	if sum.Iters != class.Iter {
		t.Fatalf("trace has %d iter markers, want %d", sum.Iters, class.Iter)
	}

	// Containment: the fused kernels run inside the traced region spans,
	// which run inside the solve. Timer noise only ever pushes the inner
	// sums up, so allow slack below but require the ordering.
	var kernelNanos int64
	for _, k := range snap.Kernels {
		if k.Kernel != metrics.TotalKernel {
			kernelNanos += int64(k.Nanos)
		}
	}
	var spanNanos int64
	for _, sp := range sum.Spans {
		spanNanos += sp.Nanos
	}
	if spanNanos > sum.SolveNanos*11/10 {
		t.Fatalf("region spans %d ns exceed solve %d ns by >10%%", spanNanos, sum.SolveNanos)
	}
	// The per-kernel rows must explain the bulk of the solve (the
	// repository's coverage invariant), and so must the region spans.
	if frac, ok := snap.Coverage(); !ok || frac < 0.6 {
		t.Fatalf("kernel coverage %.2f below 0.6 (ok=%v)", frac, ok)
	}
	if spanNanos < sum.SolveNanos*6/10 {
		t.Fatalf("region spans cover %d of %d ns — below 60%%", spanNanos, sum.SolveNanos)
	}
	// kernels ⊂ spans up to disjoint-window slack: fused kernel time not
	// under any region span is only comm3/genarray, so the span total
	// cannot be dwarfed by the kernel total.
	if kernelNanos > spanNanos*13/10 {
		t.Fatalf("fused kernels %d ns vs region spans %d ns — containment broken",
			kernelNanos, spanNanos)
	}

	// Worker view: both workers appear in the trace's wspan events.
	if len(sum.Workers) != 2 {
		t.Fatalf("trace saw %d workers, want 2: %+v", len(sum.Workers), sum.Workers)
	}
	if sum.WorkerImbalance < 1 {
		t.Fatalf("worker imbalance %g < 1", sum.WorkerImbalance)
	}

	// The health monitor watched the same run.
	rep := monitor.Report(snap)
	if !rep.OK() {
		t.Fatalf("healthy verified run reported %q", rep.Verdict)
	}
	if rep.LastResidual != sum.FinalRnm2 {
		t.Fatalf("health last residual %.17e, trace solve rnm2 %.17e",
			rep.LastResidual, sum.FinalRnm2)
	}
}

func TestTraceConvertsToValidPerfetto(t *testing.T) {
	class := nas.ClassW
	if testing.Short() {
		class = nas.ClassS
	}
	_, events, _ := tracedSolve(t, class)
	ct := metrics.ChromeTraceFrom(events)
	if err := ct.Validate(); err != nil {
		t.Fatalf("real-run trace converts to invalid Chrome JSON: %v", err)
	}
	// One process (rank 0), with solve, level and worker tracks present.
	var solveSpans, levelTracks, workerTracks int
	for _, e := range ct.TraceEvents {
		if e.Pid != 0 {
			t.Fatalf("single-process run produced pid %d", e.Pid)
		}
		switch {
		case e.Ph == "X" && e.Tid == metrics.TidSolve:
			solveSpans++
		case e.Ph == "M" && e.Name == "thread_name" && e.Tid >= metrics.TidWorkerBase:
			workerTracks++
		case e.Ph == "M" && e.Name == "thread_name" &&
			e.Tid >= metrics.TidLevelBase && e.Tid < metrics.TidWorkerBase:
			levelTracks++
		}
	}
	if solveSpans != 1 {
		t.Fatalf("%d solve spans on the solve track, want 1", solveSpans)
	}
	if levelTracks < 2 || workerTracks != 2 {
		t.Fatalf("tracks: %d level, %d worker — want ≥2 level and exactly 2 worker",
			levelTracks, workerTracks)
	}
}
